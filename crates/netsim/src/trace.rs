//! Round-level tracing: where a run spends its rounds, messages, and words.
//!
//! [`RunMetrics`] answers *how much* a run cost in the
//! paper's currency (rounds, messages, words); this module answers *where*.
//! Both executors can feed a [`TraceSink`] with one [`TraceEvent::Round`]
//! per executed round (messages routed, words charged, active senders, a
//! message-size histogram in O(log n)-word units) plus the **phase spans**
//! protocols declare through [`Ctx::enter_phase`](crate::Ctx::enter_phase) —
//! so the skeleton's `Expand` calls and the Fibonacci construction's stages
//! show up as named spans whose per-phase costs can be cited next to the
//! paper's per-phase bounds (Theorems 2, 7, 8).
//!
//! # Design contract
//!
//! * **Zero cost when disabled.** The executors consult
//!   [`TraceSink::enabled`] once per run; with [`NullSink`] no event is
//!   built, no phase name is allocated, and the hot path only pays an
//!   already-predicted branch per message.
//! * **Deterministic streams.** Events are emitted in global sender order —
//!   the same order in which messages are routed and budgets are charged —
//!   so the sequential and parallel executors produce *byte-identical*
//!   JSONL streams for the same run (asserted in
//!   `tests/executor_parity.rs`).
//! * **Errors retain the partial trace.** A budget violation or round-limit
//!   error closes the open phase span and emits a final
//!   [`TraceEvent::RunEnd`] carrying the error, mirroring how
//!   `RunMetrics` retains partial accounting on failed runs.
//!
//! # Example
//!
//! ```
//! use spanner_graph::generators;
//! use spanner_netsim::{patterns::FloodProtocol, MessageBudget, Network, TraceSummary};
//!
//! let g = generators::cycle(16);
//! let mut net = Network::new(&g, MessageBudget::CONGEST, 42);
//! let mut summary = TraceSummary::new();
//! net.run_traced(|v, _| FloodProtocol::new(v.0 == 0, 8), 64, &mut summary)
//!     .expect("flood terminates");
//! // The summary's totals are exactly the aggregate metrics.
//! assert_eq!(summary.total_rounds(), net.metrics().rounds);
//! assert_eq!(summary.total_messages(), net.metrics().messages);
//! ```

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::faults::FaultCounters;
use crate::metrics::RunMetrics;
use crate::sync::RunError;

/// Number of logarithmic message-size buckets tracked per round.
///
/// Bucket 0 counts messages of at most one word; bucket `i > 0` counts
/// messages of `2^i ..= 2^(i+1) - 1` words. 32 buckets cover every message
/// length the simulator can represent.
pub const SIZE_BUCKETS: usize = 32;

/// The histogram bucket a message of `words` words falls into.
///
/// ```
/// use spanner_netsim::trace::size_bucket;
/// assert_eq!(size_bucket(0), 0);
/// assert_eq!(size_bucket(1), 0);
/// assert_eq!(size_bucket(2), 1);
/// assert_eq!(size_bucket(3), 1);
/// assert_eq!(size_bucket(19), 4);
/// ```
#[inline]
pub fn size_bucket(words: usize) -> usize {
    if words <= 1 {
        0
    } else {
        ((usize::BITS - 1 - words.leading_zeros()) as usize).min(SIZE_BUCKETS - 1)
    }
}

/// One record in a run's trace stream.
///
/// Events are ordered: any phase transitions of round `r` (in global sender
/// order, deduplicated) precede the `Round { round: r, .. }` record, and a
/// final [`TraceEvent::RunEnd`] closes every stream — including failed runs,
/// where it carries the error after the partial round and the closing
/// [`TraceEvent::PhaseExit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A protocol-declared phase began in `round`.
    ///
    /// Emitted once per transition: all nodes of a timetable-driven protocol
    /// declare the same phase in the same round, and the executors
    /// deduplicate consecutive identical declarations.
    PhaseEnter {
        /// Round in which the phase was declared (0 = `init`).
        round: u32,
        /// Protocol-chosen phase name (e.g. `expand[03]`, `L1.ball`).
        name: String,
    },
    /// The named phase ended in `round` (by explicit
    /// [`Ctx::exit_phase`](crate::Ctx::exit_phase), by a transition to a
    /// different phase, or by the run ending with the phase open).
    PhaseExit {
        /// Round in which the span closed.
        round: u32,
        /// Name of the phase being closed.
        name: String,
    },
    /// Aggregate cost of one executed round.
    Round {
        /// The round number (0 = the `init` round, whose sends are
        /// delivered in round 1).
        round: u32,
        /// Messages accepted (routed and charged) this round.
        messages: u64,
        /// Words charged against the budget this round.
        words: u64,
        /// Nodes that sent at least one message this round.
        active: u32,
        /// Message-size histogram for this round: `sizes[b]` counts
        /// messages in bucket `b` (see [`size_bucket`]); trailing zero
        /// buckets are trimmed.
        sizes: Vec<u64>,
    },
    /// One message arrival observed by the event-driven executor
    /// ([`AsyncNetwork`](crate::AsyncNetwork)) with delivery tracing
    /// enabled. Emitted between the `Round` record of the send round and
    /// the next round's events, in deterministic `(time, sender, seq)`
    /// event order. Round-synchronous executors never emit this event, and
    /// the asynchronous executor omits it by default
    /// ([`AsyncNetwork::with_delivery_trace`](crate::AsyncNetwork::with_delivery_trace)),
    /// so default streams stay byte-identical across all executors.
    Deliver {
        /// Simulated arrival time, in ticks.
        time: u64,
        /// The protocol round the message was sent in.
        round: u32,
        /// Sending node id.
        from: u32,
        /// Receiving node id.
        to: u32,
        /// Message length in words.
        words: u64,
    },
    /// Per-category fault counts of the run; emitted once, immediately
    /// before [`TraceEvent::RunEnd`], and **only** when at least one fault
    /// was injected — unfaulted runs keep their pre-fault byte-identical
    /// streams. Mirrors `RunMetrics::faults`.
    Faults {
        /// Messages accepted but never delivered.
        dropped: u64,
        /// Extra copies delivered.
        duplicated: u64,
        /// Messages delivered late.
        delayed: u64,
        /// Messages addressed to an already-crashed node.
        dead_letters: u64,
        /// Crash-stop events that took effect.
        crashes: u64,
        /// Rounds skipped by stuttering nodes.
        stutters: u64,
    },
    /// The run ended; totals equal the run's [`RunMetrics`].
    RunEnd {
        /// Total rounds executed (partial rounds count, matching
        /// `RunMetrics::rounds`).
        rounds: u32,
        /// Total messages accepted.
        messages: u64,
        /// Total words charged.
        words: u64,
        /// Longest accepted message, in words.
        max_message_words: u64,
        /// The error that ended the run, if it failed.
        error: Option<String>,
    },
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceEvent {
    /// Serializes the event as one line of JSON (no trailing newline).
    ///
    /// The schema is stable and documented in EXPERIMENTS.md; it
    /// round-trips through [`TraceEvent::from_json_line`].
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            TraceEvent::PhaseEnter { round, name } => {
                s.push_str(&format!(
                    "{{\"ev\":\"phase_enter\",\"round\":{round},\"name\":\""
                ));
                escape_into(&mut s, name);
                s.push_str("\"}");
            }
            TraceEvent::PhaseExit { round, name } => {
                s.push_str(&format!(
                    "{{\"ev\":\"phase_exit\",\"round\":{round},\"name\":\""
                ));
                escape_into(&mut s, name);
                s.push_str("\"}");
            }
            TraceEvent::Round {
                round,
                messages,
                words,
                active,
                sizes,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"round\",\"round\":{round},\"messages\":{messages},\
                     \"words\":{words},\"active\":{active},\"sizes\":["
                ));
                for (i, v) in sizes.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&v.to_string());
                }
                s.push_str("]}");
            }
            TraceEvent::Deliver {
                time,
                round,
                from,
                to,
                words,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"deliver\",\"time\":{time},\"round\":{round},\
                     \"from\":{from},\"to\":{to},\"words\":{words}}}"
                ));
            }
            TraceEvent::Faults {
                dropped,
                duplicated,
                delayed,
                dead_letters,
                crashes,
                stutters,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"faults\",\"dropped\":{dropped},\"duplicated\":{duplicated},\
                     \"delayed\":{delayed},\"dead_letters\":{dead_letters},\
                     \"crashes\":{crashes},\"stutters\":{stutters}}}"
                ));
            }
            TraceEvent::RunEnd {
                rounds,
                messages,
                words,
                max_message_words,
                error,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"run_end\",\"rounds\":{rounds},\"messages\":{messages},\
                     \"words\":{words},\"max_message_words\":{max_message_words},\"error\":"
                ));
                match error {
                    None => s.push_str("null"),
                    Some(e) => {
                        s.push('"');
                        escape_into(&mut s, e);
                        s.push('"');
                    }
                }
                s.push('}');
            }
        }
        s
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_json_line`].
    ///
    /// Returns `None` for blank lines and anything that is not a valid
    /// trace record (the summarizer skips such lines rather than failing).
    pub fn from_json_line(line: &str) -> Option<TraceEvent> {
        let fields = parse_object(line.trim())?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let num = |k: &str| match get(k) {
            Some(JsonVal::Num(n)) => Some(*n),
            _ => None,
        };
        let text = |k: &str| match get(k) {
            Some(JsonVal::Str(s)) => Some(s.clone()),
            _ => None,
        };
        match text("ev")?.as_str() {
            "phase_enter" => Some(TraceEvent::PhaseEnter {
                round: num("round")? as u32,
                name: text("name")?,
            }),
            "phase_exit" => Some(TraceEvent::PhaseExit {
                round: num("round")? as u32,
                name: text("name")?,
            }),
            "round" => Some(TraceEvent::Round {
                round: num("round")? as u32,
                messages: num("messages")?,
                words: num("words")?,
                active: num("active")? as u32,
                sizes: match get("sizes") {
                    Some(JsonVal::Arr(v)) => v.clone(),
                    _ => return None,
                },
            }),
            "deliver" => Some(TraceEvent::Deliver {
                time: num("time")?,
                round: num("round")? as u32,
                from: num("from")? as u32,
                to: num("to")? as u32,
                words: num("words")?,
            }),
            "faults" => Some(TraceEvent::Faults {
                dropped: num("dropped")?,
                duplicated: num("duplicated")?,
                delayed: num("delayed")?,
                dead_letters: num("dead_letters")?,
                crashes: num("crashes")?,
                stutters: num("stutters")?,
            }),
            "run_end" => Some(TraceEvent::RunEnd {
                rounds: num("rounds")? as u32,
                messages: num("messages")?,
                words: num("words")?,
                max_message_words: num("max_message_words")?,
                error: match get("error") {
                    Some(JsonVal::Str(s)) => Some(s.clone()),
                    Some(JsonVal::Null) => None,
                    _ => return None,
                },
            }),
            _ => None,
        }
    }
}

/// Minimal JSON value for the flat objects the trace schema uses.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(u64),
    Arr(Vec<u64>),
    Null,
}

/// Parses a flat JSON object of string/number/number-array/null values.
fn parse_object(s: &str) -> Option<Vec<(String, JsonVal)>> {
    let mut chars = s.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> Option<String> {
        if chars.next()? != '"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(out),
                '\\' => match chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    };
    let parse_num = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> Option<u64> {
        let mut n: u64 = 0;
        let mut any = false;
        while let Some(c) = chars.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n.checked_mul(10)?.checked_add(d as u64)?;
                any = true;
                chars.next();
            } else {
                break;
            }
        }
        any.then_some(n)
    };

    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Some(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => JsonVal::Str(parse_string(&mut chars)?),
            '[' => {
                chars.next();
                let mut arr = Vec::new();
                skip_ws(&mut chars);
                if chars.peek() == Some(&']') {
                    chars.next();
                } else {
                    loop {
                        skip_ws(&mut chars);
                        arr.push(parse_num(&mut chars)?);
                        skip_ws(&mut chars);
                        match chars.next()? {
                            ',' => continue,
                            ']' => break,
                            _ => return None,
                        }
                    }
                }
                JsonVal::Arr(arr)
            }
            'n' => {
                for expect in "null".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                JsonVal::Null
            }
            _ => JsonVal::Num(parse_num(&mut chars)?),
        };
        fields.push((key, val));
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => return Some(fields),
            _ => return None,
        }
    }
}

/// Receives the trace stream of a run.
///
/// Implementations decide what to keep: nothing ([`NullSink`]), the last N
/// events ([`RingBufferSink`]), a JSONL file ([`JsonLinesSink`]), or online
/// aggregates ([`TraceSummary`]).
pub trait TraceSink {
    /// Whether the executors should collect events at all.
    ///
    /// When this returns `false` the run performs **no** tracing work:
    /// phase declarations allocate nothing and no event is constructed.
    /// Checked once per run, not per event.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Events arrive in stream order (see
    /// [`TraceEvent`]).
    fn record(&mut self, event: TraceEvent);
}

/// The disabled sink: reports `enabled() == false` and drops everything.
///
/// `Network::run` and `ParallelNetwork::run` use it internally, so untraced
/// runs pay no tracing cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// Keeps the most recent events in a bounded ring, dropping the oldest.
///
/// Useful in tests and for post-mortem inspection of long runs where only
/// the tail matters.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring keeping at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sink, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Writes each event as one line of JSON to an [`io::Write`].
///
/// The stream is deterministic: the same run produces the same bytes on
/// both executors. I/O errors are latched (tracing must not abort a
/// simulation); check [`JsonLinesSink::io_error`] after the run.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl JsonLinesSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the [`File::create`] failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonLinesSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out, error: None }
    }

    /// The first I/O error encountered while writing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the latched write error or the flush failure.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json_line();
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

/// Per-phase cost aggregated by [`TraceSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCost {
    /// The phase name, or `(untracked)` for rounds outside any span.
    pub name: String,
    /// First round attributed to the phase.
    pub first_round: u32,
    /// Last round attributed to the phase.
    pub last_round: u32,
    /// Rounds attributed to the phase (init round 0 is not counted, so
    /// phase rounds sum to `RunMetrics::rounds`).
    pub rounds: u32,
    /// Messages accepted while the phase was current.
    pub messages: u64,
    /// Words charged while the phase was current.
    pub words: u64,
}

impl PhaseCost {
    fn new(name: String, round: u32) -> Self {
        PhaseCost {
            name,
            first_round: round,
            last_round: round,
            rounds: 0,
            messages: 0,
            words: 0,
        }
    }
}

/// Online aggregation of a trace stream: rounds/messages/words per phase
/// plus a run-wide message-size histogram.
///
/// Implements [`TraceSink`], so it can be handed directly to
/// `run_traced`, or fed recorded events via [`TraceSummary::observe`] /
/// [`TraceSummary::from_events`] (the `trace_summary` binary does the
/// latter with a parsed JSONL file).
///
/// Invariants (property-tested): summing `rounds`, `messages`, and `words`
/// over all phases — including the `(untracked)` bucket — yields exactly
/// the run's [`RunMetrics`] aggregates, and the size histogram's total
/// count equals `RunMetrics::messages`.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    phases: Vec<PhaseCost>,
    /// Index into `phases` of the currently open span.
    current: Option<usize>,
    untracked: Option<PhaseCost>,
    rounds: u32,
    messages: u64,
    words: u64,
    sizes: Vec<u64>,
    deliveries: u64,
    faults: Option<FaultCounters>,
    error: Option<String>,
    ended: bool,
}

impl TraceSummary {
    /// An empty summary.
    pub fn new() -> Self {
        TraceSummary::default()
    }

    /// Builds a summary from a recorded event sequence.
    pub fn from_events<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> Self {
        let mut s = TraceSummary::new();
        for ev in events {
            s.observe(ev);
        }
        s
    }

    /// Folds one event into the aggregates.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::PhaseEnter { round, name } => {
                let idx = match self.phases.iter().position(|p| p.name == *name) {
                    Some(i) => i,
                    None => {
                        self.phases.push(PhaseCost::new(name.clone(), *round));
                        self.phases.len() - 1
                    }
                };
                self.current = Some(idx);
            }
            TraceEvent::PhaseExit { .. } => {
                self.current = None;
            }
            TraceEvent::Round {
                round,
                messages,
                words,
                sizes,
                ..
            } => {
                if *round >= 1 {
                    self.rounds += 1;
                }
                self.messages += messages;
                self.words += words;
                if self.sizes.len() < sizes.len() {
                    self.sizes.resize(sizes.len(), 0);
                }
                for (acc, v) in self.sizes.iter_mut().zip(sizes) {
                    *acc += v;
                }
                let bucket = match self.current {
                    Some(i) => &mut self.phases[i],
                    None => self
                        .untracked
                        .get_or_insert_with(|| PhaseCost::new("(untracked)".into(), *round)),
                };
                if *round >= 1 {
                    bucket.rounds += 1;
                }
                bucket.messages += messages;
                bucket.words += words;
                bucket.last_round = (*round).max(bucket.last_round);
                bucket.first_round = (*round).min(bucket.first_round);
            }
            TraceEvent::Deliver { .. } => {
                self.deliveries += 1;
            }
            TraceEvent::Faults {
                dropped,
                duplicated,
                delayed,
                dead_letters,
                crashes,
                stutters,
            } => {
                self.faults = Some(FaultCounters {
                    dropped: *dropped,
                    duplicated: *duplicated,
                    delayed: *delayed,
                    dead_letters: *dead_letters,
                    crashes: *crashes,
                    stutters: *stutters,
                });
            }
            TraceEvent::RunEnd { error, .. } => {
                self.ended = true;
                self.error.clone_from(error);
            }
        }
    }

    /// Named phase costs in first-entry order (excludes the untracked
    /// bucket — see [`TraceSummary::untracked`]).
    pub fn phases(&self) -> &[PhaseCost] {
        &self.phases
    }

    /// Costs accrued outside any declared phase, if any.
    pub fn untracked(&self) -> Option<&PhaseCost> {
        self.untracked.as_ref()
    }

    /// Total executed rounds observed (equals `RunMetrics::rounds`).
    pub fn total_rounds(&self) -> u32 {
        self.rounds
    }

    /// Total messages observed (equals `RunMetrics::messages`).
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Total words observed (equals `RunMetrics::words`).
    pub fn total_words(&self) -> u64 {
        self.words
    }

    /// Run-wide message-size histogram; entry `b` counts messages in
    /// bucket `b` (see [`size_bucket`]). Trailing zero buckets trimmed.
    pub fn size_histogram(&self) -> &[u64] {
        &self.sizes
    }

    /// Number of [`Deliver`](TraceEvent::Deliver) events observed — zero
    /// unless the stream came from an event-driven run with delivery
    /// tracing enabled.
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Fault counts recorded by the stream's
    /// [`Faults`](TraceEvent::Faults) event; `None` when the run injected
    /// no faults (the event is omitted from unfaulted streams).
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_ref()
    }

    /// The error that ended the traced run, if it failed.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Whether a [`TraceEvent::RunEnd`] was observed.
    pub fn is_complete(&self) -> bool {
        self.ended
    }

    /// Renders the per-phase table and size histogram as aligned text.
    pub fn render(&self) -> String {
        let mut rows: Vec<[String; 6]> = Vec::new();
        let fmt = |p: &PhaseCost| {
            [
                p.name.clone(),
                format!("{}..{}", p.first_round, p.last_round),
                p.rounds.to_string(),
                p.messages.to_string(),
                p.words.to_string(),
                if p.messages == 0 {
                    "-".into()
                } else {
                    format!("{:.2}", p.words as f64 / p.messages as f64)
                },
            ]
        };
        if let Some(u) = &self.untracked {
            rows.push(fmt(u));
        }
        for p in &self.phases {
            rows.push(fmt(p));
        }
        rows.push([
            "TOTAL".into(),
            String::new(),
            self.rounds.to_string(),
            self.messages.to_string(),
            self.words.to_string(),
            String::new(),
        ]);
        let header = ["phase", "span", "rounds", "messages", "words", "w/msg"];
        let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for r in &rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in header.iter().enumerate() {
            out.push_str(&format!("{h:<w$}  ", w = width[i]));
        }
        out.push('\n');
        for r in &rows {
            for (i, c) in r.iter().enumerate() {
                out.push_str(&format!("{c:<w$}  ", w = width[i]));
            }
            out.push('\n');
        }
        out.push_str("\nmessage sizes (words):\n");
        for (b, &count) in self.sizes.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let range = if b == 0 {
                "0..=1".to_string()
            } else {
                format!("{}..={}", 1u64 << b, (1u64 << (b + 1)) - 1)
            };
            out.push_str(&format!("  [{range}] {count}\n"));
        }
        if let Some(fc) = &self.faults {
            out.push_str(&format!("\nfaults injected: {fc}\n"));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!("\nrun FAILED: {e}\n"));
        }
        out
    }
}

impl TraceSink for TraceSummary {
    fn record(&mut self, event: TraceEvent) {
        self.observe(&event);
    }
}

/// A phase declaration buffered by [`Ctx`](crate::Ctx) during a round and
/// applied by the executor in global sender order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PhaseAction {
    Enter(String),
    Exit,
}

/// The executors' shared tracing state machine.
///
/// Both executors drive it through the same call sequence — per round:
/// `begin_round`, then per node in global sender order `apply_actions` +
/// `on_outbox`/`on_message`, then `end_round`; and `finish` exactly once —
/// which is what makes the two trace streams identical.
pub(crate) struct Tracer<'s> {
    sink: &'s mut dyn TraceSink,
    enabled: bool,
    current: Option<String>,
    round: u32,
    in_round: bool,
    messages: u64,
    words: u64,
    active: u32,
    sizes: [u64; SIZE_BUCKETS],
}

impl<'s> Tracer<'s> {
    pub fn new(sink: &'s mut dyn TraceSink) -> Self {
        let enabled = sink.enabled();
        Tracer {
            sink,
            enabled,
            current: None,
            round: 0,
            in_round: false,
            messages: 0,
            words: 0,
            active: 0,
            sizes: [0; SIZE_BUCKETS],
        }
    }

    /// Whether events are being collected (drives `Ctx`'s tracing flag).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Marks `round` as executing; its costs accumulate until `end_round`.
    pub fn begin_round(&mut self, round: u32) {
        if !self.enabled {
            return;
        }
        self.round = round;
        self.in_round = true;
    }

    /// Counts a node's flushed outbox toward the active-sender count.
    #[inline]
    pub fn on_outbox(&mut self, len: usize) {
        if self.enabled && len > 0 {
            self.active += 1;
        }
    }

    /// Counts one accepted message of `words` words.
    #[inline]
    pub fn on_message(&mut self, words: usize) {
        if self.enabled {
            self.messages += 1;
            self.words += words as u64;
            self.sizes[size_bucket(words)] += 1;
        }
    }

    /// Applies (and drains) one node's buffered phase declarations,
    /// deduplicating consecutive identical names across nodes.
    pub fn apply_actions(&mut self, actions: &mut Vec<PhaseAction>) {
        if actions.is_empty() {
            return;
        }
        for action in actions.drain(..) {
            match action {
                PhaseAction::Enter(name) => {
                    if self.current.as_deref() == Some(name.as_str()) {
                        continue;
                    }
                    if let Some(old) = self.current.take() {
                        self.sink.record(TraceEvent::PhaseExit {
                            round: self.round,
                            name: old,
                        });
                    }
                    self.sink.record(TraceEvent::PhaseEnter {
                        round: self.round,
                        name: name.clone(),
                    });
                    self.current = Some(name);
                }
                PhaseAction::Exit => {
                    if let Some(old) = self.current.take() {
                        self.sink.record(TraceEvent::PhaseExit {
                            round: self.round,
                            name: old,
                        });
                    }
                }
            }
        }
    }

    /// Records one [`TraceEvent::Deliver`] — called by the event-driven
    /// executor between rounds, in `(time, sender, seq)` event order.
    pub fn on_deliver(&mut self, time: u64, round: u32, from: u32, to: u32, words: u64) {
        if self.enabled {
            self.sink.record(TraceEvent::Deliver {
                time,
                round,
                from,
                to,
                words,
            });
        }
    }

    /// Emits the `Round` record for the executing round and resets the
    /// per-round scratch.
    pub fn end_round(&mut self) {
        if !self.enabled || !self.in_round {
            return;
        }
        let mut sizes: Vec<u64> = self.sizes.to_vec();
        while sizes.last() == Some(&0) {
            sizes.pop();
        }
        self.sink.record(TraceEvent::Round {
            round: self.round,
            messages: self.messages,
            words: self.words,
            active: self.active,
            sizes,
        });
        self.in_round = false;
        self.messages = 0;
        self.words = 0;
        self.active = 0;
        self.sizes = [0; SIZE_BUCKETS];
    }

    /// Closes the stream: flushes a partial round (error paths), closes the
    /// open phase span, and emits `RunEnd` with the final metrics.
    pub fn finish(&mut self, metrics: &RunMetrics, error: Option<&RunError>) {
        if !self.enabled {
            return;
        }
        // A run that failed mid-round still reports the partial round —
        // its accepted messages are in the metrics, so they must be in the
        // trace (same invariant as metrics retention on failed runs).
        self.end_round();
        if let Some(old) = self.current.take() {
            self.sink.record(TraceEvent::PhaseExit {
                round: self.round,
                name: old,
            });
        }
        if !metrics.faults.is_empty() {
            let f = metrics.faults;
            self.sink.record(TraceEvent::Faults {
                dropped: f.dropped,
                duplicated: f.duplicated,
                delayed: f.delayed,
                dead_letters: f.dead_letters,
                crashes: f.crashes,
                stutters: f.stutters,
            });
        }
        self.sink.record(TraceEvent::RunEnd {
            rounds: metrics.rounds,
            messages: metrics.messages,
            words: metrics.words,
            max_message_words: metrics.max_message_words as u64,
            error: error.map(|e| e.to_string()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseEnter {
                round: 1,
                name: "expand[00]".into(),
            },
            TraceEvent::Round {
                round: 1,
                messages: 10,
                words: 30,
                active: 5,
                sizes: vec![2, 0, 8],
            },
            TraceEvent::Round {
                round: 2,
                messages: 4,
                words: 4,
                active: 4,
                sizes: vec![4],
            },
            TraceEvent::PhaseExit {
                round: 3,
                name: "expand[00]".into(),
            },
            TraceEvent::PhaseEnter {
                round: 3,
                name: "kill \"q\"\\phase".into(),
            },
            TraceEvent::Round {
                round: 3,
                messages: 0,
                words: 0,
                active: 0,
                sizes: vec![],
            },
            TraceEvent::PhaseExit {
                round: 3,
                name: "kill \"q\"\\phase".into(),
            },
            TraceEvent::Deliver {
                time: 17,
                round: 3,
                from: 4,
                to: 9,
                words: 2,
            },
            TraceEvent::Faults {
                dropped: 2,
                duplicated: 1,
                delayed: 3,
                dead_letters: 0,
                crashes: 1,
                stutters: 4,
            },
            TraceEvent::RunEnd {
                rounds: 3,
                messages: 14,
                words: 34,
                max_message_words: 7,
                error: None,
            },
        ]
    }

    #[test]
    fn json_round_trip() {
        for ev in sample_events() {
            let line = ev.to_json_line();
            let back = TraceEvent::from_json_line(&line);
            assert_eq!(back.as_ref(), Some(&ev), "line {line}");
        }
        let err = TraceEvent::RunEnd {
            rounds: 1,
            messages: 2,
            words: 3,
            max_message_words: 4,
            error: Some("message of 9 words exceeds budget".into()),
        };
        assert_eq!(TraceEvent::from_json_line(&err.to_json_line()), Some(err));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(TraceEvent::from_json_line(""), None);
        assert_eq!(TraceEvent::from_json_line("not json"), None);
        assert_eq!(TraceEvent::from_json_line("{\"ev\":\"unknown\"}"), None);
        assert_eq!(TraceEvent::from_json_line("{\"ev\":\"round\"}"), None);
    }

    #[test]
    fn size_buckets() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(4), 2);
        assert_eq!(size_bucket(7), 2);
        assert_eq!(size_bucket(1 << 20), 20);
        assert_eq!(size_bucket(usize::MAX), SIZE_BUCKETS - 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBufferSink::new(2);
        for ev in sample_events() {
            ring.record(ev);
        }
        assert_eq!(ring.dropped(), 8);
        let kept = ring.into_events();
        assert_eq!(kept.len(), 2);
        assert!(matches!(kept[1], TraceEvent::RunEnd { .. }));
    }

    #[test]
    fn null_sink_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn summary_aggregates_phases() {
        let events = sample_events();
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.total_rounds(), 3);
        assert_eq!(s.total_messages(), 14);
        assert_eq!(s.total_words(), 34);
        assert!(s.is_complete());
        assert!(s.error().is_none());
        assert_eq!(s.phases().len(), 2);
        assert_eq!(s.phases()[0].name, "expand[00]");
        assert_eq!(s.phases()[0].rounds, 2);
        assert_eq!(s.phases()[0].messages, 14);
        assert_eq!(s.phases()[1].rounds, 1);
        assert_eq!(s.untracked(), None);
        assert_eq!(s.total_deliveries(), 1);
        let fc = s.fault_counters().expect("faults event observed");
        assert_eq!(fc.dropped, 2);
        assert_eq!(fc.stutters, 4);
        // Phase rounds sum to the total.
        let sum: u32 = s.phases().iter().map(|p| p.rounds).sum();
        assert_eq!(sum, s.total_rounds());
        assert_eq!(s.size_histogram(), &[6, 0, 8]);
        let rendered = s.render();
        assert!(rendered.contains("expand[00]"));
        assert!(rendered.contains("TOTAL"));
    }

    #[test]
    fn summary_untracked_bucket() {
        let events = vec![
            TraceEvent::Round {
                round: 0,
                messages: 3,
                words: 3,
                active: 3,
                sizes: vec![3],
            },
            TraceEvent::Round {
                round: 1,
                messages: 1,
                words: 2,
                active: 1,
                sizes: vec![0, 1],
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.total_rounds(), 1); // init round 0 is not an executed round
        assert_eq!(s.total_messages(), 4);
        let u = s.untracked().expect("untracked bucket");
        assert_eq!(u.rounds, 1);
        assert_eq!(u.messages, 4);
        assert!(!s.is_complete());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonLinesSink::new(Vec::new());
        for ev in sample_events() {
            sink.record(ev);
        }
        assert!(sink.io_error().is_none());
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<TraceEvent> = text
            .lines()
            .filter_map(TraceEvent::from_json_line)
            .collect();
        assert_eq!(parsed, sample_events());
    }
}
