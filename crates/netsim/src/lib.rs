//! Synchronous message-passing network simulator.
//!
//! This crate implements the computational model of Pettie (PODC 2008),
//! Sect. 1.1: *"The graph for which we want a sparse spanner is identical to
//! the underlying communications network … The computation proceeds in
//! synchronized time steps in which each processor can communicate one
//! message to each neighbor in the graph. Any local computation performed is
//! free."* Algorithms are separated *"by their maximum message length,
//! measured in units of O(log n) bits"*.
//!
//! Accordingly:
//!
//! * a node is a [`Protocol`] state machine; each round it receives the
//!   messages sent to it in the previous round and may send one message per
//!   neighbor,
//! * message length is measured in **words** (one word = one O(log n)-bit
//!   quantity, e.g. a node id or a small integer) via [`MessageSize`],
//! * the [`Network`] runner enforces a [`MessageBudget`] and records
//!   [`RunMetrics`]: rounds, messages, total words, maximum message length —
//!   exactly the costs the paper's theorems bound,
//! * local computation is free (not measured), matching the model,
//! * randomness is deterministic: each node derives its own RNG from the
//!   master seed, so runs are reproducible bit-for-bit.
//!
//! The [`sync`] module provides the runner; [`patterns`] provides reusable
//! protocol building blocks used by the constructions in the paper
//! (radius-bounded flooding, convergecast, pipelined aggregation).
//!
//! # Example
//!
//! ```
//! use spanner_graph::generators;
//! use spanner_netsim::{patterns::FloodProtocol, MessageBudget, Network};
//!
//! let g = generators::cycle(16);
//! let mut net = Network::new(&g, MessageBudget::Unbounded, 42);
//! let states = net.run(
//!     |v, _| FloodProtocol::new(v.0 == 0, 8),
//!     64,
//! ).expect("flood terminates");
//! // After flooding radius 8 on a 16-cycle, everyone is reached.
//! assert!(states.iter().all(|s| s.reached()));
//! ```

#![warn(missing_docs)]

pub mod async_exec;
pub mod budget;
pub mod csr;
pub mod faults;
pub mod metrics;
pub mod parallel;
pub mod patterns;
pub mod rng;
pub mod sync;
pub mod trace;

pub use async_exec::{AsyncNetwork, Synchronizer};
pub use budget::{BudgetViolation, MessageBudget};
pub use csr::CsrAdjacency;
pub use faults::{FaultCounters, FaultPlan, MsgFate};
pub use metrics::RunMetrics;
pub use parallel::{run_parallel, ParallelNetwork, ParallelOutcome};
pub use sync::{Ctx, MessageSize, Network, Protocol, RunError};
pub use trace::{
    size_bucket, JsonLinesSink, NullSink, PhaseCost, RingBufferSink, TraceEvent, TraceSink,
    TraceSummary, SIZE_BUCKETS,
};
