//! The synchronous round-based runner.
//!
//! A [`Network`] couples a communication graph with a per-node [`Protocol`]
//! state machine and executes synchronized rounds: messages sent in round
//! `r` are delivered at the start of round `r + 1`; each node may send at
//! most one message per neighbor per round (enforced); message lengths are
//! checked against the [`MessageBudget`] and accounted in [`RunMetrics`].
//!
//! Execution stops when the network is *quiescent* — a round in which no
//! messages were sent and every node reports [`Protocol::done`] — or when
//! the round cap is hit (an error: the paper's algorithms have hard round
//! bounds and exceeding them is a bug, not a long run).
//!
//! # Hot-path design
//!
//! The round loop performs no per-round heap allocation in steady state:
//! inboxes live in two arenas (`cur`/`next`) of per-node `Vec`s that are
//! cleared and swapped each round, keeping their capacity; the outbox is one
//! reused `Vec`; duplicate-send detection is a per-node stamp array
//! ([`Ctx::send`] is O(log deg), [`Ctx::broadcast`] is O(deg)). Adjacency is
//! a flat [`CsrAdjacency`] shared with the parallel executor.

use std::sync::Arc;

use rand::rngs::SmallRng;

use spanner_graph::{Graph, NodeId};

use crate::budget::{BudgetViolation, MessageBudget};
use crate::csr::CsrAdjacency;
use crate::faults::{FaultPlan, FaultState};
use crate::metrics::RunMetrics;
use crate::rng::node_rng;
use crate::trace::{NullSink, PhaseAction, TraceSink, Tracer};

/// Message length in words of O(log n) bits.
///
/// One word holds one node identifier or one bounded integer, mirroring the
/// paper's measurement of message length "in units of O(log n) bits".
pub trait MessageSize {
    /// The number of words this message occupies on the wire.
    fn words(&self) -> usize;
}

impl MessageSize for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for NodeId {
    fn words(&self) -> usize {
        1
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(MessageSize::words).sum()
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

/// A per-node state machine run by [`Network`].
///
/// Implementations receive the full inbox of the round (sender plus message,
/// sorted by sender id — a deterministic order shared by the sequential and
/// parallel executors) and send via the [`Ctx`].
pub trait Protocol {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; may send initial messages.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called every round with the messages delivered this round.
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(NodeId, Self::Msg)]);

    /// Whether this node is content to stop if the network goes quiet.
    ///
    /// The runner stops at the first round where no messages are in flight
    /// and all nodes are `done`. Defaults to `true` (pure quiescence).
    fn done(&self) -> bool {
        true
    }
}

/// Per-round, per-node execution context handed to [`Protocol`] methods.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    n: usize,
    round: u32,
    neighbors: &'a [NodeId],
    rng: &'a mut SmallRng,
    outbox: &'a mut Vec<(NodeId, M)>,
    /// Duplicate-send detection: `seen[u] == stamp` iff a message to `u` was
    /// queued by this node this round. The stamp is bumped per (node, round),
    /// so the array never needs clearing — O(1) per send, no per-round work.
    seen: &'a mut [u64],
    stamp: u64,
    /// Phase declarations buffered this round; the executor drains them in
    /// global sender order, which keeps trace streams executor-independent.
    phases: &'a mut Vec<PhaseAction>,
    /// Whether the current run collects trace events (see [`Ctx::tracing`]).
    tracing: bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Internal constructor shared by the sequential and parallel executors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_for_executor(
        node: NodeId,
        n: usize,
        round: u32,
        neighbors: &'a [NodeId],
        rng: &'a mut SmallRng,
        outbox: &'a mut Vec<(NodeId, M)>,
        seen: &'a mut [u64],
        stamp: u64,
        phases: &'a mut Vec<PhaseAction>,
        tracing: bool,
    ) -> Self {
        Ctx {
            node,
            n,
            round,
            neighbors,
            rng,
            outbox,
            seen,
            stamp,
            phases,
            tracing,
        }
    }

    /// This node's identifier.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the network (`n` is global knowledge in the
    /// model: bounds like `4 s_i ln n` are computed locally from it).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number (0 during `init`).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Identifiers of this node's neighbors, ascending.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// This node's private deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Queues a message to neighbor `to` for delivery next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor (the model only allows messages
    /// along edges) or if a message was already queued to `to` this round
    /// (one message per neighbor per round).
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "{} attempted to message non-neighbor {}",
            self.node,
            to
        );
        self.mark_sent(to);
        self.outbox.push((to, msg));
    }

    /// Sends `msg` to every neighbor.
    ///
    /// Equivalent to [`Ctx::send`] per neighbor, but skips the per-neighbor
    /// membership search: O(deg) total, which keeps a broadcast from a
    /// degree-Δ hub linear instead of quadratic.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let neighbors = self.neighbors;
        self.outbox.reserve(neighbors.len());
        for &to in neighbors {
            self.mark_sent(to);
            self.outbox.push((to, msg.clone()));
        }
    }

    /// Whether the current run is collecting trace events.
    ///
    /// Protocols that build phase names dynamically should gate the
    /// formatting on this so untraced runs stay allocation-free:
    ///
    /// ```ignore
    /// if ctx.tracing() {
    ///     ctx.enter_phase(format!("expand[{call:02}]"));
    /// }
    /// ```
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Declares that this node entered the named phase this round.
    ///
    /// Phase spans are a *global* notion: timetable-driven protocols have
    /// every node declare the same phase in the same round, and the
    /// executors deduplicate consecutive identical declarations into one
    /// [`PhaseEnter`](crate::TraceEvent::PhaseEnter) event. Entering a
    /// different phase implicitly closes the current one. No-op (and free)
    /// when the run is untraced — but see [`Ctx::tracing`] for avoiding the
    /// cost of *building* the name.
    pub fn enter_phase(&mut self, name: impl Into<String>) {
        if self.tracing {
            self.phases.push(PhaseAction::Enter(name.into()));
        }
    }

    /// Declares that the current phase ended this round.
    ///
    /// Deduplicated like [`Ctx::enter_phase`]; a no-op when no phase is
    /// open or the run is untraced. Runs that end (or fail) with a phase
    /// still open have the span closed automatically.
    pub fn exit_phase(&mut self) {
        if self.tracing {
            self.phases.push(PhaseAction::Exit);
        }
    }

    /// Records a send to `to` this round; panics on the second one.
    #[inline]
    fn mark_sent(&mut self, to: NodeId) {
        let slot = &mut self.seen[to.index()];
        assert!(
            *slot != self.stamp,
            "{} queued two messages to {} in one round",
            self.node,
            to
        );
        *slot = self.stamp;
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The round cap was reached before quiescence.
    RoundLimit {
        /// The cap that was exceeded.
        max_rounds: u32,
    },
    /// A message exceeded the [`MessageBudget`].
    Budget(BudgetViolation),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RoundLimit { max_rounds } => {
                write!(f, "network not quiescent after {max_rounds} rounds")
            }
            RunError::Budget(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<BudgetViolation> for RunError {
    fn from(v: BudgetViolation) -> Self {
        RunError::Budget(v)
    }
}

/// A synchronous network over a graph.
///
/// Construct once per run; [`Network::run`] drives a fresh set of protocol
/// instances to quiescence and leaves cost accounting in
/// [`Network::metrics`] — including after a failed run, where the metrics
/// cover everything accepted up to the error (the parallel executor
/// guarantees the identical partial accounting).
///
/// The topology is one `Arc`'d [`CsrAdjacency`]; a [`Graph`] is only an
/// optional convenience input ([`Network::new`]), never a requirement —
/// [`Network::from_csr`] runs straight off a streamed adjacency, which is
/// what the million-node construction drivers do.
#[derive(Debug)]
pub struct Network {
    budget: MessageBudget,
    seed: u64,
    metrics: RunMetrics,
    /// Sorted flat adjacency (the Ctx hands slices of it out and `send`
    /// binary searches them), shared with drivers and other executors.
    adjacency: Arc<CsrAdjacency>,
    /// Fault schedule, if any; `None` selects the pre-fault code path.
    faults: Option<FaultPlan>,
}

impl Network {
    /// A network on `graph` with the given message budget and master seed.
    pub fn new(graph: &Graph, budget: MessageBudget, seed: u64) -> Self {
        Network::from_csr(Arc::new(CsrAdjacency::from_graph(graph)), budget, seed)
    }

    /// Like [`Network::new`], reusing an already-built adjacency (e.g. one
    /// shared with a [`ParallelNetwork`](crate::parallel::ParallelNetwork)).
    ///
    /// # Panics
    ///
    /// Panics if `adjacency` was built for a different node count.
    pub fn with_adjacency(
        graph: &Graph,
        adjacency: CsrAdjacency,
        budget: MessageBudget,
        seed: u64,
    ) -> Self {
        assert_eq!(
            adjacency.node_count(),
            graph.node_count(),
            "adjacency built for a different graph"
        );
        Network::from_csr(Arc::new(adjacency), budget, seed)
    }

    /// A network straight over a shared CSR adjacency — the zero-`Graph`
    /// construction path. Runs are byte-identical (states, metrics,
    /// traces) to a [`Network::new`] over the equivalent graph.
    pub fn from_csr(adjacency: Arc<CsrAdjacency>, budget: MessageBudget, seed: u64) -> Self {
        Network {
            budget,
            seed,
            metrics: RunMetrics::default(),
            adjacency,
            faults: None,
        }
    }

    /// Injects faults from `plan` on subsequent runs (see
    /// [`FaultPlan`]). Without this call — or with an empty plan — the
    /// round loop is the exact pre-fault monomorphization, so the unfaulted
    /// hot path costs nothing.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fault schedule in force, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The message budget in force.
    pub fn budget(&self) -> MessageBudget {
        self.budget
    }

    /// Cost accounting of the most recent [`Network::run`].
    pub fn metrics(&self) -> RunMetrics {
        self.metrics
    }

    /// The shared sorted adjacency.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// A clone of the `Arc` holding the adjacency, for sharing with other
    /// executors, drivers, or verification passes.
    pub fn adjacency_arc(&self) -> Arc<CsrAdjacency> {
        Arc::clone(&self.adjacency)
    }

    /// Runs `factory`-created protocols to quiescence, sequentially.
    ///
    /// `factory(v, rng)` builds node `v`'s initial state; `rng` is the
    /// node's private RNG (stream 0), which the protocol may use for its
    /// own up-front random choices. Returns the final node states.
    ///
    /// # Errors
    ///
    /// [`RunError::RoundLimit`] if not quiescent within `max_rounds`;
    /// [`RunError::Budget`] if any message exceeds the budget.
    pub fn run<P, F>(&mut self, factory: F, max_rounds: u32) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        self.run_traced(factory, max_rounds, &mut NullSink)
    }

    /// Like [`Network::run`], streaming [`TraceEvent`](crate::TraceEvent)s
    /// into `sink` as the run executes.
    ///
    /// With a disabled sink ([`NullSink`]) this is exactly `run`. The event
    /// stream is deterministic and identical to the one
    /// [`ParallelNetwork::run_traced`](crate::ParallelNetwork::run_traced)
    /// produces for the same graph, seed, and protocol — byte-for-byte when
    /// serialized. On a failed run the partial round and the open phase
    /// span are flushed before the closing
    /// [`RunEnd`](crate::TraceEvent::RunEnd), so the trace always accounts
    /// for exactly what [`Network::metrics`] reports.
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`].
    pub fn run_traced<P, F>(
        &mut self,
        factory: F,
        max_rounds: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        let mut tracer = Tracer::new(sink);
        // Monomorphize the round loop on the tracing and fault decisions:
        // the untraced unfaulted instantiation carries no per-message
        // branches at all, so `run` costs exactly what it did before
        // tracing and fault injection existed.
        let result = match (tracer.enabled(), self.faults.is_some()) {
            (false, false) => {
                self.run_inner::<P, F, false, false>(factory, max_rounds, &mut tracer)
            }
            (true, false) => self.run_inner::<P, F, true, false>(factory, max_rounds, &mut tracer),
            (false, true) => self.run_inner::<P, F, false, true>(factory, max_rounds, &mut tracer),
            (true, true) => self.run_inner::<P, F, true, true>(factory, max_rounds, &mut tracer),
        };
        tracer.finish(&self.metrics, result.as_ref().err());
        result
    }

    fn run_inner<P, F, const TRACED: bool, const FAULTS: bool>(
        &mut self,
        mut factory: F,
        max_rounds: u32,
        tracer: &mut Tracer<'_>,
    ) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        let n = self.adjacency.node_count();
        self.metrics = RunMetrics::default();
        // The fault engine (empty and untouched unless FAULTS). Faulted
        // rounds bypass the counting scatter: deliveries go through
        // `FaultState::flush_due` into a flat inbox arena, because
        // delayed/held messages break the global-sender-order precondition
        // the scatter needs. `flush_due` sinks receivers in ascending
        // order, so the arena is one append-only `Vec` with per-receiver
        // offsets — no per-node `Vec` growth on the fault path either.
        let mut fstate: FaultState<P::Msg> = FaultState::new(
            self.faults.clone().unwrap_or_default(),
            if FAULTS { n } else { 0 },
        );
        let mut fault_flat: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut fault_counts: Vec<u32> = vec![0; if FAULTS { n } else { 0 }];

        let mut rngs: Vec<SmallRng> = (0..n as u32).map(|v| node_rng(self.seed, v, 0)).collect();
        let mut nodes: Vec<P> = (0..n as u32)
            .map(|v| factory(NodeId(v), &mut rngs[v as usize]))
            .collect();

        // Double-buffered inbox arenas. Sends are appended to `staging` as
        // (receiver, sender, msg) in global send order — a purely sequential
        // write. At each round boundary a counting scatter regroups them by
        // receiver into `flat`, whose per-receiver slices are handed to the
        // protocols; the slices come out sorted by sender for free because
        // senders flush in ascending order and the scatter is stable. All
        // buffers keep their capacity across rounds, so the steady-state
        // loop performs no heap allocation.
        let mut staging: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();
        let mut flat: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut offsets: Vec<u32> = vec![0; n + 1];
        let mut cursor: Vec<u32> = vec![0; n];
        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut seen = vec![0u64; n];
        let mut stamp = 0u64;
        let mut phase_actions: Vec<PhaseAction> = Vec::new();

        // Init phase (round 0).
        if TRACED {
            tracer.begin_round(0);
        }
        if FAULTS {
            fstate.begin_round(0);
        }
        for v in 0..n {
            let node = NodeId(v as u32);
            if FAULTS && fstate.plan().crashed(node, 0) {
                continue;
            }
            outbox.clear();
            stamp += 1;
            {
                let mut ctx = Ctx {
                    node,
                    n,
                    round: 0,
                    neighbors: self.adjacency.neighbors(node),
                    rng: &mut rngs[v],
                    outbox: &mut outbox,
                    seen: &mut seen,
                    stamp,
                    phases: &mut phase_actions,
                    tracing: TRACED,
                };
                nodes[v].init(&mut ctx);
            }
            if TRACED {
                tracer.apply_actions(&mut phase_actions);
            }
            self.flush::<_, TRACED, FAULTS>(
                node,
                0,
                &mut outbox,
                &mut staging,
                &mut fstate,
                tracer,
            )?;
        }
        if TRACED {
            tracer.end_round();
        }
        if FAULTS {
            self.metrics.faults = fstate.counters();
        }

        let mut round: u32 = 0;
        loop {
            // `staging` (or the fault engine) holds everything sent in the
            // round just executed. Crashed nodes count as done: they will
            // never act again.
            let quiescent = if FAULTS {
                fstate.in_flight() == 0
                    && nodes
                        .iter()
                        .enumerate()
                        .all(|(v, p)| p.done() || fstate.plan().crashed(NodeId(v as u32), round))
            } else {
                staging.is_empty() && nodes.iter().all(Protocol::done)
            };
            if quiescent {
                break;
            }
            if round >= max_rounds {
                return Err(RunError::RoundLimit { max_rounds });
            }
            round += 1;
            self.metrics.rounds = round;
            if TRACED {
                tracer.begin_round(round);
            }

            if FAULTS {
                fstate.begin_round(round);
                fault_flat.clear();
                fault_counts.fill(0);
                fstate.flush_due(round, |to, sender, msg| {
                    fault_counts[to.index()] += 1;
                    fault_flat.push((sender, msg));
                });
                // `flush_due` emits receivers in ascending order, so the
                // arena is already receiver-grouped: prefix-sum the counts
                // into the shared offsets table.
                offsets[0] = 0;
                for v in 0..n {
                    offsets[v + 1] = offsets[v] + fault_counts[v];
                }
            } else {
                scatter(&mut staging, &mut flat, &mut offsets, &mut cursor);
            }

            for v in 0..n {
                let node = NodeId(v as u32);
                if FAULTS && fstate.plan().skips(node, round) {
                    continue;
                }
                let inbox: &[(NodeId, P::Msg)] = if FAULTS {
                    &fault_flat[offsets[v] as usize..offsets[v + 1] as usize]
                } else {
                    &flat[offsets[v] as usize..offsets[v + 1] as usize]
                };
                debug_assert!(inbox.windows(2).all(|w| w[0].0 <= w[1].0));
                outbox.clear();
                stamp += 1;
                {
                    let mut ctx = Ctx {
                        node,
                        n,
                        round,
                        neighbors: self.adjacency.neighbors(node),
                        rng: &mut rngs[v],
                        outbox: &mut outbox,
                        seen: &mut seen,
                        stamp,
                        phases: &mut phase_actions,
                        tracing: TRACED,
                    };
                    nodes[v].round(&mut ctx, inbox);
                }
                if TRACED {
                    tracer.apply_actions(&mut phase_actions);
                }
                self.flush::<_, TRACED, FAULTS>(
                    node,
                    round,
                    &mut outbox,
                    &mut staging,
                    &mut fstate,
                    tracer,
                )?;
            }
            if TRACED {
                tracer.end_round();
            }
            if FAULTS {
                self.metrics.faults = fstate.counters();
            }
        }

        Ok(nodes)
    }

    /// Validates one node's outbox and appends it to the staging buffer
    /// (or, under fault injection, routes it through the fault engine).
    fn flush<M: MessageSize + Clone, const TRACED: bool, const FAULTS: bool>(
        &mut self,
        sender: NodeId,
        round: u32,
        outbox: &mut Vec<(NodeId, M)>,
        staging: &mut Vec<(NodeId, NodeId, M)>,
        fstate: &mut FaultState<M>,
        tracer: &mut Tracer<'_>,
    ) -> Result<(), RunError> {
        if TRACED {
            tracer.on_outbox(outbox.len());
        }
        for (to, msg) in outbox.drain(..) {
            let words = msg.words();
            if !self.budget.allows(words) {
                self.metrics.faults = fstate.counters();
                return Err(RunError::Budget(BudgetViolation {
                    sender,
                    receiver: to,
                    round,
                    words,
                    budget: self.budget,
                }));
            }
            self.metrics.messages += 1;
            self.metrics.words += words as u64;
            self.metrics.max_message_words = self.metrics.max_message_words.max(words);
            if TRACED {
                tracer.on_message(words);
            }
            if FAULTS {
                fstate.accept(round, sender, to, msg);
            } else {
                staging.push((to, sender, msg));
            }
        }
        Ok(())
    }
}

/// Regroups `staging` — (receiver, sender, msg) triples in send order — by
/// receiver into `flat`, leaving `offsets[v]..offsets[v+1]` as receiver
/// `v`'s slice. A stable counting scatter: O(messages + n), and each slice
/// stays in ascending sender order. Drains `staging`; both buffers retain
/// their capacity for the next round.
///
/// Message counts fit `u32`: a round delivers at most one message per
/// directed edge, and [`CsrAdjacency`] already bounds half-edges to `u32`.
/// Shared with the asynchronous executor, which regroups each recovered
/// round's arrivals the same way.
pub(crate) fn scatter<M>(
    staging: &mut Vec<(NodeId, NodeId, M)>,
    flat: &mut Vec<(NodeId, M)>,
    offsets: &mut [u32],
    cursor: &mut [u32],
) {
    let n = offsets.len() - 1;
    offsets.fill(0);
    for &(to, _, _) in staging.iter() {
        offsets[to.index() + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    cursor.copy_from_slice(&offsets[..n]);
    let total = staging.len();
    flat.clear();
    flat.reserve(total);
    // SAFETY: the counting pass above guarantees every receiver index is in
    // bounds and that the bucket cursors tile 0..total exactly, so each of
    // the `total` reserved slots is written exactly once before set_len.
    // Nothing between the writes can panic (ptr::write and u32 increments
    // on values the counting pass already produced), so no
    // partially-initialized buffer is ever observed.
    unsafe {
        let base = flat.as_mut_ptr();
        for (to, sender, msg) in staging.drain(..) {
            let c = &mut cursor[to.index()];
            std::ptr::write(base.add(*c as usize), (sender, msg));
            *c += 1;
        }
        flat.set_len(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    /// Counts rounds until it has heard from every neighbor, then stops.
    struct HelloOnce {
        heard: usize,
        expected: usize,
    }

    impl Protocol for HelloOnce {
        type Msg = u64;

        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            self.expected = ctx.degree();
            ctx.broadcast(ctx.me().0 as u64);
        }

        fn round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            self.heard += inbox.len();
        }
    }

    #[test]
    fn hello_once_quiesces_in_one_round() {
        let g = generators::cycle(10);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(
                |_, _| HelloOnce {
                    heard: 0,
                    expected: 0,
                },
                10,
            )
            .unwrap();
        assert!(states.iter().all(|s| s.heard == s.expected));
        let m = net.metrics();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages, 20);
        assert_eq!(m.max_message_words, 1);
    }

    /// Forwards a token along a path; used to test multi-round runs.
    struct Relay {
        has_token: bool,
        delivered: bool,
    }

    impl Protocol for Relay {
        type Msg = u64;

        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.has_token {
                // Send to the higher neighbor (path direction).
                if let Some(&next) = ctx.neighbors().last() {
                    if next > ctx.me() {
                        ctx.send(next, 7);
                    }
                }
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            for &(_, tok) in inbox {
                self.delivered = true;
                let me = ctx.me();
                if let Some(&next) = ctx.neighbors().iter().find(|&&u| u > me) {
                    ctx.send(next, tok);
                }
            }
        }
    }

    #[test]
    fn relay_takes_path_length_rounds() {
        let g = generators::path(6);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(
                |v, _| Relay {
                    has_token: v.0 == 0,
                    delivered: false,
                },
                100,
            )
            .unwrap();
        assert!(states.iter().skip(1).all(|s| s.delivered));
        assert_eq!(net.metrics().rounds, 5);
        assert_eq!(net.metrics().messages, 5);
    }

    #[derive(Debug)]
    struct Chatterbox;

    impl Protocol for Chatterbox {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(1);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[(NodeId, u64)]) {
            ctx.broadcast(1);
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::cycle(4);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let err = net.run(|_, _| Chatterbox, 5).unwrap_err();
        assert_eq!(err, RunError::RoundLimit { max_rounds: 5 });
    }

    #[derive(Debug)]
    struct BigTalker;

    impl Protocol for BigTalker {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![0; 10]);
        }
        fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {}
    }

    #[test]
    fn budget_violation_detected() {
        let g = generators::cycle(4);
        let mut net = Network::new(&g, MessageBudget::Words(4), 1);
        match net.run(|_, _| BigTalker, 5) {
            Err(RunError::Budget(v)) => {
                assert_eq!(v.words, 10);
                assert_eq!(v.budget, MessageBudget::Words(4));
            }
            other => panic!("expected budget violation, got {other:?}"),
        }
        // Unbounded accepts the same protocol.
        let mut net2 = Network::new(&g, MessageBudget::Unbounded, 1);
        assert!(net2.run(|_, _| BigTalker, 5).is_ok());
        assert_eq!(net2.metrics().max_message_words, 10);
    }

    struct NonNeighborSender;

    impl Protocol for NonNeighborSender {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(3), 1); // not adjacent on a path of 5
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(5);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let _ = net.run(|_, _| NonNeighborSender, 5);
    }

    struct DoubleSender;

    impl Protocol for DoubleSender {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(1), 1);
                ctx.send(NodeId(1), 2);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn double_send_panics() {
        let g = generators::path(3);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let _ = net.run(|_, _| DoubleSender, 5);
    }

    struct SendThenBroadcast;

    impl Protocol for SendThenBroadcast {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                let first = ctx.neighbors()[0];
                ctx.send(first, 1);
                ctx.broadcast(2); // would double-send to `first`
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn broadcast_after_send_panics() {
        let g = generators::star(4);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let _ = net.run(|_, _| SendThenBroadcast, 5);
    }

    /// A node may send to the same neighbor again in a *later* round; the
    /// stamp-based duplicate check must not leak across rounds.
    struct RepeatSender {
        received: u32,
    }

    impl Protocol for RepeatSender {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(1), 0);
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            if ctx.me() == NodeId(0) && ctx.round() <= 3 {
                ctx.send(NodeId(1), ctx.round() as u64);
            }
            self.received += inbox.len() as u32;
        }
    }

    #[test]
    fn resend_in_later_round_is_allowed() {
        let g = generators::path(2);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net.run(|_, _| RepeatSender { received: 0 }, 10).unwrap();
        assert_eq!(states[1].received, 4); // rounds 1..=4 deliver
    }

    #[test]
    fn inbox_sorted_by_sender() {
        struct Check {
            ok: bool,
            fired: bool,
        }
        impl Protocol for Check {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.broadcast(0);
            }
            fn round(&mut self, _: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
                if !inbox.is_empty() {
                    self.fired = true;
                    self.ok &= inbox.windows(2).all(|w| w[0].0 < w[1].0);
                }
            }
        }
        let g = generators::star(8);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(
                |_, _| Check {
                    ok: true,
                    fired: false,
                },
                5,
            )
            .unwrap();
        assert!(states[0].fired);
        assert!(states.iter().all(|s| s.ok));
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::Rng;
        struct Coin {
            flips: Vec<bool>,
        }
        impl Protocol for Coin {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                let b = ctx.rng().gen::<bool>();
                self.flips.push(b);
                ctx.broadcast(b as u64);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
                if ctx.round() <= 3 && !inbox.is_empty() {
                    let b = ctx.rng().gen::<bool>();
                    self.flips.push(b);
                    ctx.broadcast(b as u64);
                }
            }
        }
        let g = generators::erdos_renyi_gnm(30, 60, 5);
        let run = |seed| {
            let mut net = Network::new(&g, MessageBudget::CONGEST, seed);
            let s = net.run(|_, _| Coin { flips: vec![] }, 50).unwrap();
            s.into_iter().map(|c| c.flips).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn shared_adjacency_constructor() {
        let g = generators::cycle(6);
        let csr = CsrAdjacency::from_graph(&g);
        let mut net = Network::with_adjacency(&g, csr.clone(), MessageBudget::CONGEST, 1);
        let states = net
            .run(
                |_, _| HelloOnce {
                    heard: 0,
                    expected: 0,
                },
                10,
            )
            .unwrap();
        assert!(states.iter().all(|s| s.heard == s.expected));
        assert_eq!(net.adjacency(), &csr);
    }
}
