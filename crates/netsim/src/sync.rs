//! The synchronous round-based runner.
//!
//! A [`Network`] couples a communication graph with a per-node [`Protocol`]
//! state machine and executes synchronized rounds: messages sent in round
//! `r` are delivered at the start of round `r + 1`; each node may send at
//! most one message per neighbor per round (enforced); message lengths are
//! checked against the [`MessageBudget`] and accounted in [`RunMetrics`].
//!
//! Execution stops when the network is *quiescent* — a round in which no
//! messages were sent and every node reports [`Protocol::done`] — or when
//! the round cap is hit (an error: the paper's algorithms have hard round
//! bounds and exceeding them is a bug, not a long run).

use rand::rngs::SmallRng;

use spanner_graph::{Graph, NodeId};

use crate::budget::{BudgetViolation, MessageBudget};
use crate::metrics::RunMetrics;
use crate::rng::node_rng;

/// Message length in words of O(log n) bits.
///
/// One word holds one node identifier or one bounded integer, mirroring the
/// paper's measurement of message length "in units of O(log n) bits".
pub trait MessageSize {
    /// The number of words this message occupies on the wire.
    fn words(&self) -> usize;
}

impl MessageSize for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for NodeId {
    fn words(&self) -> usize {
        1
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(MessageSize::words).sum()
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

/// A per-node state machine run by [`Network`].
///
/// Implementations receive the full inbox of the round (sender plus message,
/// sorted by sender id — a deterministic order shared by the sequential and
/// parallel executors) and send via the [`Ctx`].
pub trait Protocol {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; may send initial messages.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called every round with the messages delivered this round.
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(NodeId, Self::Msg)]);

    /// Whether this node is content to stop if the network goes quiet.
    ///
    /// The runner stops at the first round where no messages are in flight
    /// and all nodes are `done`. Defaults to `true` (pure quiescence).
    fn done(&self) -> bool {
        true
    }
}

/// Per-round, per-node execution context handed to [`Protocol`] methods.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    n: usize,
    round: u32,
    neighbors: &'a [NodeId],
    rng: &'a mut SmallRng,
    outbox: &'a mut Vec<(NodeId, M)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Internal constructor shared by the sequential and parallel executors.
    pub(crate) fn new_for_executor(
        node: NodeId,
        n: usize,
        round: u32,
        neighbors: &'a [NodeId],
        rng: &'a mut SmallRng,
        outbox: &'a mut Vec<(NodeId, M)>,
    ) -> Self {
        Ctx {
            node,
            n,
            round,
            neighbors,
            rng,
            outbox,
        }
    }

    /// This node's identifier.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the network (`n` is global knowledge in the
    /// model: bounds like `4 s_i ln n` are computed locally from it).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number (0 during `init`).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Identifiers of this node's neighbors, ascending.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// This node's private deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Queues a message to neighbor `to` for delivery next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor (the model only allows messages
    /// along edges) or if a message was already queued to `to` this round
    /// (one message per neighbor per round).
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "{} attempted to message non-neighbor {}",
            self.node,
            to
        );
        assert!(
            !self.outbox.iter().any(|&(t, _)| t == to),
            "{} queued two messages to {} in one round",
            self.node,
            to
        );
        self.outbox.push((to, msg));
    }

    /// Sends `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.send(to, msg.clone());
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The round cap was reached before quiescence.
    RoundLimit {
        /// The cap that was exceeded.
        max_rounds: u32,
    },
    /// A message exceeded the [`MessageBudget`].
    Budget(BudgetViolation),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RoundLimit { max_rounds } => {
                write!(f, "network not quiescent after {max_rounds} rounds")
            }
            RunError::Budget(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<BudgetViolation> for RunError {
    fn from(v: BudgetViolation) -> Self {
        RunError::Budget(v)
    }
}

/// A synchronous network over a graph.
///
/// Construct once per run; [`Network::run`] drives a fresh set of protocol
/// instances to quiescence and leaves cost accounting in
/// [`Network::metrics`].
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    budget: MessageBudget,
    seed: u64,
    metrics: RunMetrics,
    /// Sorted neighbor lists (the Ctx hands these out and `send` binary
    /// searches them).
    adjacency: Vec<Vec<NodeId>>,
}

impl<'g> Network<'g> {
    /// A network on `graph` with the given message budget and master seed.
    pub fn new(graph: &'g Graph, budget: MessageBudget, seed: u64) -> Self {
        let adjacency = graph
            .nodes()
            .map(|v| {
                let mut ns: Vec<NodeId> = graph.neighbor_ids(v).collect();
                ns.sort_unstable();
                ns
            })
            .collect();
        Network {
            graph,
            budget,
            seed,
            metrics: RunMetrics::default(),
            adjacency,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The message budget in force.
    pub fn budget(&self) -> MessageBudget {
        self.budget
    }

    /// Cost accounting of the most recent [`Network::run`].
    pub fn metrics(&self) -> RunMetrics {
        self.metrics
    }

    /// Runs `factory`-created protocols to quiescence, sequentially.
    ///
    /// `factory(v, rng)` builds node `v`'s initial state; `rng` is the
    /// node's private RNG (stream 0), which the protocol may use for its
    /// own up-front random choices. Returns the final node states.
    ///
    /// # Errors
    ///
    /// [`RunError::RoundLimit`] if not quiescent within `max_rounds`;
    /// [`RunError::Budget`] if any message exceeds the budget.
    pub fn run<P, F>(&mut self, mut factory: F, max_rounds: u32) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        let n = self.graph.node_count();
        self.metrics = RunMetrics::default();

        let mut rngs: Vec<SmallRng> = (0..n as u32).map(|v| node_rng(self.seed, v, 0)).collect();
        let mut nodes: Vec<P> = (0..n as u32)
            .map(|v| factory(NodeId(v), &mut rngs[v as usize]))
            .collect();

        // Inboxes for the *next* round.
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut in_flight: u64 = 0;

        // Init phase (round 0).
        for v in 0..n {
            let node = NodeId(v as u32);
            outbox.clear();
            {
                let mut ctx = Ctx {
                    node,
                    n,
                    round: 0,
                    neighbors: &self.adjacency[v],
                    rng: &mut rngs[v],
                    outbox: &mut outbox,
                };
                nodes[v].init(&mut ctx);
            }
            in_flight += self.flush(node, 0, &mut outbox, &mut inboxes)?;
        }

        let mut round: u32 = 0;
        loop {
            let all_done = in_flight == 0 && nodes.iter().all(Protocol::done);
            if all_done {
                break;
            }
            if round >= max_rounds {
                return Err(RunError::RoundLimit { max_rounds });
            }
            round += 1;
            self.metrics.rounds = round;
            in_flight = 0;

            // Swap inboxes out so sends this round land in fresh ones.
            let mut delivering = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
            for v in 0..n {
                let node = NodeId(v as u32);
                let mut inbox = std::mem::take(&mut delivering[v]);
                inbox.sort_by_key(|&(s, _)| s);
                outbox.clear();
                {
                    let mut ctx = Ctx {
                        node,
                        n,
                        round,
                        neighbors: &self.adjacency[v],
                        rng: &mut rngs[v],
                        outbox: &mut outbox,
                    };
                    nodes[v].round(&mut ctx, &inbox);
                }
                in_flight += self.flush(node, round, &mut outbox, &mut inboxes)?;
            }
        }

        Ok(nodes)
    }

    /// Validates and delivers one node's outbox; returns how many messages
    /// were sent.
    fn flush<M: MessageSize>(
        &mut self,
        sender: NodeId,
        round: u32,
        outbox: &mut Vec<(NodeId, M)>,
        inboxes: &mut [Vec<(NodeId, M)>],
    ) -> Result<u64, RunError> {
        let mut sent = 0u64;
        for (to, msg) in outbox.drain(..) {
            let words = msg.words();
            if !self.budget.allows(words) {
                return Err(RunError::Budget(BudgetViolation {
                    sender,
                    receiver: to,
                    round,
                    words,
                    budget: self.budget,
                }));
            }
            self.metrics.messages += 1;
            self.metrics.words += words as u64;
            self.metrics.max_message_words = self.metrics.max_message_words.max(words);
            inboxes[to.index()].push((sender, msg));
            sent += 1;
        }
        Ok(sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    /// Counts rounds until it has heard from every neighbor, then stops.
    struct HelloOnce {
        heard: usize,
        expected: usize,
    }

    impl Protocol for HelloOnce {
        type Msg = u64;

        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            self.expected = ctx.degree();
            ctx.broadcast(ctx.me().0 as u64);
        }

        fn round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            self.heard += inbox.len();
        }
    }

    #[test]
    fn hello_once_quiesces_in_one_round() {
        let g = generators::cycle(10);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(|_, _| HelloOnce { heard: 0, expected: 0 }, 10)
            .unwrap();
        assert!(states.iter().all(|s| s.heard == s.expected));
        let m = net.metrics();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages, 20);
        assert_eq!(m.max_message_words, 1);
    }

    /// Forwards a token along a path; used to test multi-round runs.
    struct Relay {
        has_token: bool,
        delivered: bool,
    }

    impl Protocol for Relay {
        type Msg = u64;

        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.has_token {
                // Send to the higher neighbor (path direction).
                if let Some(&next) = ctx.neighbors().last() {
                    if next > ctx.me() {
                        ctx.send(next, 7);
                    }
                }
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            for &(_, tok) in inbox {
                self.delivered = true;
                let me = ctx.me();
                if let Some(&next) = ctx.neighbors().iter().find(|&&u| u > me) {
                    ctx.send(next, tok);
                }
            }
        }
    }

    #[test]
    fn relay_takes_path_length_rounds() {
        let g = generators::path(6);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(
                |v, _| Relay {
                    has_token: v.0 == 0,
                    delivered: false,
                },
                100,
            )
            .unwrap();
        assert!(states.iter().skip(1).all(|s| s.delivered));
        assert_eq!(net.metrics().rounds, 5);
        assert_eq!(net.metrics().messages, 5);
    }

    #[derive(Debug)]
    struct Chatterbox;

    impl Protocol for Chatterbox {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(1);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[(NodeId, u64)]) {
            ctx.broadcast(1);
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::cycle(4);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let err = net.run(|_, _| Chatterbox, 5).unwrap_err();
        assert_eq!(err, RunError::RoundLimit { max_rounds: 5 });
    }

    #[derive(Debug)]
    struct BigTalker;

    impl Protocol for BigTalker {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![0; 10]);
        }
        fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {}
    }

    #[test]
    fn budget_violation_detected() {
        let g = generators::cycle(4);
        let mut net = Network::new(&g, MessageBudget::Words(4), 1);
        match net.run(|_, _| BigTalker, 5) {
            Err(RunError::Budget(v)) => {
                assert_eq!(v.words, 10);
                assert_eq!(v.budget, MessageBudget::Words(4));
            }
            other => panic!("expected budget violation, got {other:?}"),
        }
        // Unbounded accepts the same protocol.
        let mut net2 = Network::new(&g, MessageBudget::Unbounded, 1);
        assert!(net2.run(|_, _| BigTalker, 5).is_ok());
        assert_eq!(net2.metrics().max_message_words, 10);
    }

    struct NonNeighborSender;

    impl Protocol for NonNeighborSender {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(3), 1); // not adjacent on a path of 5
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(5);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let _ = net.run(|_, _| NonNeighborSender, 5);
    }

    struct DoubleSender;

    impl Protocol for DoubleSender {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(1), 1);
                ctx.send(NodeId(1), 2);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn double_send_panics() {
        let g = generators::path(3);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let _ = net.run(|_, _| DoubleSender, 5);
    }

    #[test]
    fn inbox_sorted_by_sender() {
        struct Check {
            ok: bool,
            fired: bool,
        }
        impl Protocol for Check {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.broadcast(0);
            }
            fn round(&mut self, _: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
                if !inbox.is_empty() {
                    self.fired = true;
                    self.ok &= inbox.windows(2).all(|w| w[0].0 < w[1].0);
                }
            }
        }
        let g = generators::star(8);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(|_, _| Check { ok: true, fired: false }, 5)
            .unwrap();
        assert!(states[0].fired);
        assert!(states.iter().all(|s| s.ok));
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::Rng;
        struct Coin {
            flips: Vec<bool>,
        }
        impl Protocol for Coin {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                let b = ctx.rng().gen::<bool>();
                self.flips.push(b);
                ctx.broadcast(b as u64);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
                if ctx.round() <= 3 && !inbox.is_empty() {
                    let b = ctx.rng().gen::<bool>();
                    self.flips.push(b);
                    ctx.broadcast(b as u64);
                }
            }
        }
        let g = generators::erdos_renyi_gnm(30, 60, 5);
        let run = |seed| {
            let mut net = Network::new(&g, MessageBudget::CONGEST, seed);
            let s = net.run(|_, _| Coin { flips: vec![] }, 50).unwrap();
            s.into_iter().map(|c| c.flips).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
