//! Deterministic fault injection for the round executors.
//!
//! The paper's model (Sect. 1.1) is perfectly synchronous and lossless; the
//! lower bounds of Sect. 3 are exactly about what an adversary can force on
//! a τ-round algorithm. This module supplies that adversary as a testing
//! tool: a [`FaultPlan`] describes a *schedule* of message drops,
//! duplications, delivery delays, crash-stop failures, and scheduler
//! stutters, and both executors ([`Network`](crate::Network) and
//! [`ParallelNetwork`](crate::ParallelNetwork)) apply it identically —
//! byte-identical final states, [`RunMetrics`](crate::RunMetrics), and
//! trace streams at any thread count.
//!
//! # Determinism
//!
//! Every fault decision is a **pure function** of the plan and the injection
//! point, derived from a dedicated SplitMix64 stream that is disjoint from
//! the per-node protocol RNG streams (`node_rng` stream 0): a message fault
//! hashes `(fault seed, kind, send round, sender, receiver)`, a stutter
//! hashes `(fault seed, kind, round, node)`. Since at most one message per
//! (sender, receiver) pair exists per round, each injection point has a
//! unique key, so the decision does not depend on executor, thread count, or
//! iteration order — and injecting faults never perturbs protocol
//! randomness.
//!
//! # Semantics
//!
//! * **Drop** — the message is accepted (budget-checked, charged to
//!   `RunMetrics`, traced) but never delivered.
//! * **Duplicate** — the receiver sees the message twice in the delivery
//!   round, adjacent in the inbox (inboxes stay sender-sorted).
//! * **Delay(d)** — a message sent in round `r` is delivered in round
//!   `r + 1 + d` instead of `r + 1`, merged into that round's inbox in
//!   sender order (ties: earlier send first).
//! * **Crash-stop at round c** — the node executes neither `init` (if
//!   `c == 0`) nor any `round()` from round `c` on, and sends nothing;
//!   messages addressed to it are delivered into the void. A crashed node
//!   counts as `done` for quiescence.
//! * **Stutter** — the node skips `round()` for that round; messages that
//!   would have been delivered to it are held and merged (sender-sorted)
//!   into the inbox of the next round it executes.
//!
//! Fault precedence per message: drop, then duplicate, then delay. All
//! classes can be restricted to a node [`scope`](FaultPlan::scoped_to);
//! message faults apply only when *both* endpoints are in scope.

use std::collections::{BTreeMap, BTreeSet};

use spanner_graph::NodeId;

use crate::rng::splitmix64;

/// Salt separating the fault stream from every `node_rng` stream.
const FAULT_STREAM_SALT: u64 = 0xFA17_57A7_E5EE_D000;

/// Per-kind sub-salts.
const KIND_DROP: u64 = 1;
const KIND_DUPLICATE: u64 = 2;
const KIND_DELAY: u64 = 3;
const KIND_DELAY_AMOUNT: u64 = 4;
const KIND_STUTTER: u64 = 5;

/// Maps a hash to a uniform `f64` in `[0, 1)`.
#[inline]
fn chance(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The fate the plan assigns to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered normally next round.
    Deliver,
    /// Never delivered.
    Drop,
    /// Delivered twice next round (adjacent inbox entries).
    Duplicate,
    /// Delivered `d` rounds late (`d ≥ 1`).
    Delay(u32),
}

/// A deterministic fault schedule for one run.
///
/// Built with the `with_*` methods; the empty (default) plan injects
/// nothing, and executors given no plan run the exact pre-fault code path.
///
/// ```
/// use spanner_netsim::FaultPlan;
/// use spanner_graph::NodeId;
///
/// let plan = FaultPlan::new(7)
///     .with_drops(0.01)
///     .with_delays(0.05, 3)
///     .with_crash(NodeId(4), 10);
/// assert!(plan.is_active());
/// assert!(plan.crashed(NodeId(4), 10) && !plan.crashed(NodeId(4), 9));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    drop: f64,
    duplicate: f64,
    delay: f64,
    max_delay: u32,
    stutter: f64,
    crashes: BTreeMap<u32, u32>,
    scope: Option<BTreeSet<u32>>,
}

impl FaultPlan {
    /// An empty plan whose fault stream is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Drops each in-scope message independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_drops(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop = p;
        self
    }

    /// Duplicates each surviving message with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability out of range"
        );
        self.duplicate = p;
        self
    }

    /// Delays each surviving message with probability `p` by a uniform
    /// `1..=max_delay` rounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`, or if `p > 0` with `max_delay == 0`.
    pub fn with_delays(mut self, p: f64, max_delay: u32) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay probability out of range");
        assert!(p == 0.0 || max_delay >= 1, "delaying by 0 rounds");
        self.delay = p;
        self.max_delay = max_delay;
        self
    }

    /// Makes each in-scope node skip `round()` with probability `p` per
    /// round (it still receives: held messages arrive the next round it
    /// executes).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_stutters(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "stutter probability out of range");
        self.stutter = p;
        self
    }

    /// Crash-stops `node` at `round`: it executes nothing from that round
    /// on (`round == 0` suppresses `init` too) and sends nothing.
    pub fn with_crash(mut self, node: NodeId, round: u32) -> Self {
        self.crashes.insert(node.0, round);
        self
    }

    /// Restricts every fault class to the given nodes; message faults apply
    /// only when both endpoints are in scope. Scheduled crashes of
    /// out-of-scope nodes still fire (the crash list is explicit).
    pub fn scoped_to<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        self.scope = Some(nodes.into_iter().map(|v| v.0).collect());
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.delay > 0.0
            || self.stutter > 0.0
            || !self.crashes.is_empty()
    }

    /// The seed of the dedicated fault stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `v` is subject to probabilistic faults.
    fn in_scope(&self, v: NodeId) -> bool {
        self.scope.as_ref().is_none_or(|s| s.contains(&v.0))
    }

    /// A uniform `[0, 1)` roll for one injection point — the dedicated
    /// fault stream (see module docs).
    fn roll(&self, kind: u64, round: u32, a: u32, b: u32) -> f64 {
        self.roll_at(kind, round as u64, a, b)
    }

    /// Like [`FaultPlan::roll`], keyed by a 64-bit timestamp instead of a
    /// round number (the event-driven executor keys delay decisions by the
    /// simulated send time, which outgrows `u32`).
    fn roll_at(&self, kind: u64, when: u64, a: u32, b: u32) -> f64 {
        let mut s = self.seed ^ FAULT_STREAM_SALT ^ kind;
        let x = splitmix64(&mut s);
        let mut t = x ^ (((a as u64) << 32) | b as u64);
        let y = splitmix64(&mut t);
        let mut u = y ^ when;
        chance(splitmix64(&mut u))
    }

    /// Delivery latency, in simulated ticks, of a message `sender → to`
    /// handed to the link at `send_time` — the event-driven executor's
    /// delay model ([`AsyncNetwork`](crate::AsyncNetwork)).
    ///
    /// Reuses the plan's delay machinery: the base latency is one tick;
    /// with probability [`FaultPlan::with_delays`]' `p` the link adds a
    /// uniform `1..=max_delay` extra ticks. Like every fault decision this
    /// is a **pure hash** of `(seed, edge, send time)` — reproducible,
    /// executor- and thread-count-independent — and plans without a delay
    /// clause (or with either endpoint out of scope) always return 1, so
    /// the empty plan is the unit-latency ("zero-delay") model.
    pub fn link_latency(&self, send_time: u64, sender: NodeId, to: NodeId) -> u64 {
        if self.delay <= 0.0 || !self.in_scope(sender) || !self.in_scope(to) {
            return 1;
        }
        if self.roll_at(KIND_DELAY, send_time, sender.0, to.0) < self.delay {
            let r = self.roll_at(KIND_DELAY_AMOUNT, send_time, sender.0, to.0);
            let d = 1 + (r * self.max_delay as f64) as u64;
            return 1 + d.min(self.max_delay.max(1) as u64);
        }
        1
    }

    /// The fate of the message `sender → to` sent in `send_round`.
    ///
    /// Pure: the same arguments always yield the same fate, whatever
    /// executor or thread count evaluates it.
    pub fn message_fate(&self, send_round: u32, sender: NodeId, to: NodeId) -> MsgFate {
        if !self.in_scope(sender) || !self.in_scope(to) {
            return MsgFate::Deliver;
        }
        if self.drop > 0.0 && self.roll(KIND_DROP, send_round, sender.0, to.0) < self.drop {
            return MsgFate::Drop;
        }
        if self.duplicate > 0.0
            && self.roll(KIND_DUPLICATE, send_round, sender.0, to.0) < self.duplicate
        {
            return MsgFate::Duplicate;
        }
        if self.delay > 0.0 && self.roll(KIND_DELAY, send_round, sender.0, to.0) < self.delay {
            let r = self.roll(KIND_DELAY_AMOUNT, send_round, sender.0, to.0);
            let d = 1 + (r * self.max_delay as f64) as u32;
            return MsgFate::Delay(d.min(self.max_delay.max(1)));
        }
        MsgFate::Deliver
    }

    /// The round at which `v` crash-stops, if scheduled.
    pub fn crash_round(&self, v: NodeId) -> Option<u32> {
        self.crashes.get(&v.0).copied()
    }

    /// Whether `v` is crashed in `round` (crashes are permanent).
    pub fn crashed(&self, v: NodeId, round: u32) -> bool {
        self.crash_round(v).is_some_and(|c| c <= round)
    }

    /// Whether `v` stutters in `round` (never during `init`, never once
    /// crashed). Pure, like [`FaultPlan::message_fate`].
    pub fn stutters(&self, v: NodeId, round: u32) -> bool {
        round >= 1
            && self.stutter > 0.0
            && self.in_scope(v)
            && !self.crashed(v, round)
            && self.roll(KIND_STUTTER, round, v.0, u32::MAX) < self.stutter
    }

    /// Whether `v` skips its protocol call in `round` (crashed or
    /// stuttering).
    pub fn skips(&self, v: NodeId, round: u32) -> bool {
        self.crashed(v, round) || self.stutters(v, round)
    }

    /// Parses the `--faults` spec syntax used by the experiment binaries:
    /// comma-separated `key=value` clauses, e.g.
    /// `drop=0.01,dup=0.005,delay=0.05:3,stutter=0.01,crash=4@10,seed=7`.
    ///
    /// Clauses: `seed=<u64>`, `drop=<p>`, `dup=<p>`, `delay=<p>:<max d>`,
    /// `stutter=<p>`, `crash=<node>@<round>` (repeatable),
    /// `scope=<node>-<node>` (inclusive id range).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys or malformed
    /// values.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if (0.0..=1.0).contains(&p) {
                    Ok(p)
                } else {
                    Err(format!("probability `{v}` outside [0, 1]"))
                }
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "drop" => plan.drop = prob(value)?,
                "dup" => plan.duplicate = prob(value)?,
                "delay" => {
                    let (p, d) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay `{value}` is not <p>:<max rounds>"))?;
                    plan.delay = prob(p)?;
                    plan.max_delay = d.parse().map_err(|_| format!("bad delay bound `{d}`"))?;
                    if plan.delay > 0.0 && plan.max_delay == 0 {
                        return Err("delay bound must be >= 1".into());
                    }
                }
                "stutter" => plan.stutter = prob(value)?,
                "crash" => {
                    let (node, round) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash `{value}` is not <node>@<round>"))?;
                    let node: u32 = node.parse().map_err(|_| format!("bad node `{node}`"))?;
                    let round: u32 = round.parse().map_err(|_| format!("bad round `{round}`"))?;
                    plan.crashes.insert(node, round);
                }
                "scope" => {
                    let (lo, hi) = value
                        .split_once('-')
                        .ok_or_else(|| format!("scope `{value}` is not <lo>-<hi>"))?;
                    let lo: u32 = lo.parse().map_err(|_| format!("bad node `{lo}`"))?;
                    let hi: u32 = hi.parse().map_err(|_| format!("bad node `{hi}`"))?;
                    if lo > hi {
                        return Err(format!("empty scope `{value}`"));
                    }
                    plan.scope = Some((lo..=hi).collect());
                }
                other => return Err(format!("unknown fault clause `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Per-category counts of injected faults, carried in
/// [`RunMetrics`](crate::RunMetrics) and (when non-zero) in the trace
/// stream's [`TraceEvent::Faults`](crate::TraceEvent::Faults) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Messages accepted but never delivered.
    pub dropped: u64,
    /// Extra copies delivered (one per duplicated message).
    pub duplicated: u64,
    /// Messages delivered late.
    pub delayed: u64,
    /// Messages addressed to a node already crashed at delivery time.
    pub dead_letters: u64,
    /// Crash-stop events that took effect.
    pub crashes: u64,
    /// Rounds skipped by stuttering nodes.
    pub stutters: u64,
}

impl FaultCounters {
    /// Whether no fault was injected.
    pub fn is_empty(&self) -> bool {
        *self == FaultCounters::default()
    }

    /// Adds another run's counts (for sequentially composed phases).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.dead_letters += other.dead_letters;
        self.crashes += other.crashes;
        self.stutters += other.stutters;
    }
}

impl std::fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dropped={} duplicated={} delayed={} dead_letters={} crashes={} stutters={}",
            self.dropped,
            self.duplicated,
            self.delayed,
            self.dead_letters,
            self.crashes,
            self.stutters
        )
    }
}

/// The executors' shared fault engine: applies a [`FaultPlan`] to the
/// message stream at the single point both executors already share — the
/// global-sender-order routing pass — so faulted runs stay deterministic
/// and executor-independent.
///
/// Both executors drive the same call sequence: [`FaultState::begin_round`]
/// once per executed round (counts crash/stutter events),
/// [`FaultState::accept`] per accepted message in global sender order, and
/// [`FaultState::flush_due`] once per round boundary to materialize that
/// round's inboxes. `flush_due` never touches the counters, so the two
/// executors' slightly different call timing around run termination cannot
/// skew accounting.
pub(crate) struct FaultState<M> {
    plan: FaultPlan,
    /// Undelivered messages keyed by delivery round, each
    /// `(receiver, sender, msg)` in acceptance order (= send round, then
    /// global sender order — identical in both executors).
    pending: BTreeMap<u32, Vec<(NodeId, NodeId, M)>>,
    /// Per-receiver staging for the delivery merge; holds messages across
    /// rounds for stuttering receivers.
    carry: Vec<Vec<(NodeId, M)>>,
    in_flight: u64,
    counters: FaultCounters,
}

impl<M: Clone> FaultState<M> {
    /// An engine for `n` nodes executing `plan`.
    pub(crate) fn new(plan: FaultPlan, n: usize) -> Self {
        FaultState {
            plan,
            pending: BTreeMap::new(),
            carry: (0..n).map(|_| Vec::new()).collect(),
            in_flight: 0,
            counters: FaultCounters::default(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Undelivered messages (pending future rounds plus held carry).
    pub(crate) fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Counts the crash/stutter events taking effect in `round`. Called
    /// exactly once per *executed* round by both executors (before the
    /// nodes run), so the counts are executor-independent.
    pub(crate) fn begin_round(&mut self, round: u32) {
        for v in 0..self.carry.len() as u32 {
            let v = NodeId(v);
            if self.plan.crash_round(v) == Some(round) {
                self.counters.crashes += 1;
            } else if self.plan.stutters(v, round) {
                self.counters.stutters += 1;
            }
        }
    }

    /// Routes one accepted message sent in `send_round`, applying its fate.
    pub(crate) fn accept(&mut self, send_round: u32, sender: NodeId, to: NodeId, msg: M) {
        let deliver = send_round + 1;
        match self.plan.message_fate(send_round, sender, to) {
            MsgFate::Drop => {
                self.counters.dropped += 1;
                return;
            }
            MsgFate::Duplicate => {
                self.counters.duplicated += 1;
                self.push(deliver, to, sender, msg.clone());
                self.push(deliver, to, sender, msg);
            }
            MsgFate::Delay(d) => {
                self.counters.delayed += 1;
                self.push(deliver + d, to, sender, msg);
            }
            MsgFate::Deliver => self.push(deliver, to, sender, msg),
        }
        // Observational: the receiver will already be dead on arrival. The
        // message still occupies the wire (and drains normally), so this
        // cannot skew quiescence between executors.
        if self.plan.crashed(to, deliver) {
            self.counters.dead_letters += 1;
        }
    }

    fn push(&mut self, round: u32, to: NodeId, sender: NodeId, msg: M) {
        self.pending
            .entry(round)
            .or_default()
            .push((to, sender, msg));
        self.in_flight += 1;
    }

    /// Materializes the inboxes for `round` through `sink(receiver, sender,
    /// msg)`, sender-sorted per receiver (ties: older sends first), holding
    /// back messages for receivers that stutter in `round`. Returns how many
    /// messages were sunk. Counter-neutral by design (see type docs).
    pub(crate) fn flush_due(&mut self, round: u32, mut sink: impl FnMut(NodeId, NodeId, M)) -> u64 {
        if let Some(due) = self.pending.remove(&round) {
            for (to, sender, msg) in due {
                self.carry[to.index()].push((sender, msg));
            }
        }
        let mut delivered = 0u64;
        for v in 0..self.carry.len() {
            if self.carry[v].is_empty() {
                continue;
            }
            let node = NodeId(v as u32);
            if self.plan.stutters(node, round) {
                continue;
            }
            // Stable: equal senders keep acceptance order (older first).
            self.carry[v].sort_by_key(|&(s, _)| s);
            for (s, m) in self.carry[v].drain(..) {
                delivered += 1;
                sink(node, s, m);
            }
        }
        self.in_flight -= delivered;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert_eq!(p.message_fate(3, NodeId(1), NodeId(2)), MsgFate::Deliver);
        assert!(!p.stutters(NodeId(0), 5));
        assert!(!p.crashed(NodeId(0), 5));
    }

    #[test]
    fn decisions_are_pure() {
        let p = FaultPlan::new(11)
            .with_drops(0.3)
            .with_duplicates(0.3)
            .with_delays(0.3, 4)
            .with_stutters(0.2);
        for r in 0..50u32 {
            for (a, b) in [(0u32, 1u32), (5, 9), (9, 5)] {
                let f1 = p.message_fate(r, NodeId(a), NodeId(b));
                let f2 = p.clone().message_fate(r, NodeId(a), NodeId(b));
                assert_eq!(f1, f2);
            }
            assert_eq!(p.stutters(NodeId(3), r), p.stutters(NodeId(3), r));
        }
    }

    #[test]
    fn direction_matters() {
        // The (sender, receiver) pair is ordered: the two directions of an
        // edge are distinct streams.
        let p = FaultPlan::new(1).with_drops(0.5);
        let mut differ = false;
        for r in 0..64 {
            differ |=
                p.message_fate(r, NodeId(0), NodeId(1)) != p.message_fate(r, NodeId(1), NodeId(0));
        }
        assert!(differ);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::new(5).with_drops(0.25);
        let mut dropped = 0;
        let total = 10_000;
        for i in 0..total {
            if p.message_fate(i % 97, NodeId(i / 97), NodeId(1000 + i % 97)) == MsgFate::Drop {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn delay_bounds_respected() {
        let p = FaultPlan::new(9).with_delays(1.0, 3);
        for i in 0..500u32 {
            match p.message_fate(i, NodeId(i), NodeId(i + 1)) {
                MsgFate::Delay(d) => assert!((1..=3).contains(&d)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn link_latency_is_pure_and_bounded() {
        let unit = FaultPlan::default();
        assert_eq!(unit.link_latency(0, NodeId(0), NodeId(1)), 1);
        assert_eq!(unit.link_latency(u64::MAX, NodeId(7), NodeId(3)), 1);

        let p = FaultPlan::new(13).with_delays(0.5, 4);
        let mut slow = 0u32;
        for t in 0..2_000u64 {
            let l1 = p.link_latency(t, NodeId(2), NodeId(9));
            let l2 = p.link_latency(t, NodeId(2), NodeId(9));
            assert_eq!(l1, l2, "latency must be a pure hash");
            assert!((1..=5).contains(&l1), "latency {l1} out of 1..=1+max");
            if l1 > 1 {
                slow += 1;
            }
        }
        // Roughly half the sends should hit the delay clause.
        assert!((700..1300).contains(&slow), "slow sends {slow}");

        // Scoped plans leave out-of-scope links at unit latency.
        let q = FaultPlan::new(1).with_delays(1.0, 3).scoped_to([NodeId(0)]);
        assert_eq!(q.link_latency(5, NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn crash_is_permanent_and_suppresses_stutter() {
        let p = FaultPlan::new(2)
            .with_stutters(1.0)
            .with_crash(NodeId(4), 6);
        assert!(!p.crashed(NodeId(4), 5));
        assert!(p.crashed(NodeId(4), 6));
        assert!(p.crashed(NodeId(4), 1000));
        assert!(p.stutters(NodeId(4), 5));
        assert!(!p.stutters(NodeId(4), 6));
        assert!(p.stutters(NodeId(3), 6));
        assert!(!p.stutters(NodeId(3), 0), "init never stutters");
    }

    #[test]
    fn scope_confines_probabilistic_faults() {
        let p = FaultPlan::new(3)
            .with_drops(1.0)
            .with_stutters(1.0)
            .scoped_to([NodeId(0), NodeId(1)]);
        assert_eq!(p.message_fate(1, NodeId(0), NodeId(1)), MsgFate::Drop);
        assert_eq!(p.message_fate(1, NodeId(0), NodeId(2)), MsgFate::Deliver);
        assert_eq!(p.message_fate(1, NodeId(2), NodeId(1)), MsgFate::Deliver);
        assert!(p.stutters(NodeId(1), 4));
        assert!(!p.stutters(NodeId(2), 4));
    }

    #[test]
    fn state_orders_delayed_messages_by_sender() {
        let mut st: FaultState<u64> = FaultState::new(FaultPlan::default(), 4);
        // Simulate: round 0 sends from 3 and 1 to 0; round 1 sends from 2.
        st.accept(0, NodeId(3), NodeId(0), 30);
        st.accept(0, NodeId(1), NodeId(0), 10);
        let mut got = Vec::new();
        st.flush_due(1, |to, s, m| got.push((to, s, m)));
        assert_eq!(
            got,
            vec![(NodeId(0), NodeId(1), 10), (NodeId(0), NodeId(3), 30)]
        );
        assert_eq!(st.in_flight(), 0);
    }

    #[test]
    fn state_holds_carry_for_stutterers() {
        let plan = FaultPlan::new(0).with_stutters(1.0);
        let mut st: FaultState<u64> = FaultState::new(plan, 2);
        st.accept(0, NodeId(1), NodeId(0), 7);
        let mut got = Vec::new();
        // Node 0 stutters every round, so nothing is ever flushed.
        st.flush_due(1, |to, s, m| got.push((to, s, m)));
        assert!(got.is_empty());
        assert_eq!(st.in_flight(), 1);
    }

    #[test]
    fn parse_spec_round_trips_all_clauses() {
        let p =
            FaultPlan::parse_spec("seed=9,drop=0.1,dup=0.05,delay=0.2:4,stutter=0.01,crash=3@7")
                .unwrap();
        assert_eq!(p.seed(), 9);
        assert!(p.is_active());
        assert_eq!(p.crash_round(NodeId(3)), Some(7));
        let q = FaultPlan::parse_spec("scope=2-5,drop=1").unwrap();
        assert_eq!(q.message_fate(1, NodeId(2), NodeId(5)), MsgFate::Drop);
        assert_eq!(q.message_fate(1, NodeId(1), NodeId(5)), MsgFate::Deliver);
    }

    #[test]
    fn parse_spec_rejects_garbage() {
        for bad in [
            "nonsense",
            "drop=2.0",
            "delay=0.5",
            "delay=0.5:0",
            "crash=5",
            "scope=9-3",
            "frob=1",
        ] {
            assert!(FaultPlan::parse_spec(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn counters_absorb_and_display() {
        let mut a = FaultCounters {
            dropped: 1,
            duplicated: 2,
            delayed: 3,
            dead_letters: 4,
            crashes: 5,
            stutters: 6,
        };
        assert!(!a.is_empty());
        assert!(FaultCounters::default().is_empty());
        a.absorb(&a.clone());
        assert_eq!(a.dropped, 2);
        assert_eq!(a.stutters, 12);
        let s = a.to_string();
        assert!(s.contains("dropped=2") && s.contains("crashes=10"));
    }
}
