//! Cost accounting for simulated runs.
//!
//! The paper's theorems bound exactly three quantities: the number of
//! synchronized rounds, the maximum message length (in O(log n)-bit words),
//! and implicitly the total communication volume. [`RunMetrics`] records all
//! three so experiments can print them next to the analytic bounds.

use std::fmt;

use crate::faults::FaultCounters;

/// Aggregate cost of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Rounds executed (the paper's "time").
    pub rounds: u32,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words across all messages.
    pub words: u64,
    /// Maximum single-message length observed, in words.
    pub max_message_words: usize,
    /// Per-category counts of injected faults; all-zero on unfaulted runs.
    pub faults: FaultCounters,
    /// Discrete events processed by the event-driven executor — one per
    /// message arrival, protocol or synchronizer. Zero on round-synchronous
    /// runs.
    pub events: u64,
    /// Synchronizer overhead messages (acknowledgements plus safety
    /// broadcast/convergecast traffic) sent by the event-driven executor's
    /// synchronizer; **not** included in [`RunMetrics::messages`], which
    /// stays the protocol-level count the paper's theorems bound. Zero on
    /// round-synchronous runs.
    pub sync_messages: u64,
    /// Simulated-time horizon of the event-driven run, in ticks (the time
    /// of the last event processed). Zero on round-synchronous runs.
    pub sim_time: u64,
}

impl RunMetrics {
    /// Merges another run's costs into this one, sequentially composing two
    /// phases: rounds add, volumes add, max lengths take the max.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.max_message_words = self.max_message_words.max(other.max_message_words);
        self.faults.absorb(&other.faults);
        self.events += other.events;
        self.sync_messages += other.sync_messages;
        self.sim_time += other.sim_time;
    }

    /// The round-synchronous projection: these metrics with the
    /// event-driven executor's counters ([`RunMetrics::events`],
    /// [`RunMetrics::sync_messages`], [`RunMetrics::sim_time`]) zeroed.
    ///
    /// A synchronized asynchronous run recovers exact round semantics, so
    /// its protocol-level accounting equals the round-synchronous
    /// executors' — `async.protocol_only() == sync_metrics` is the parity
    /// invariant asserted in `tests/executor_parity.rs`.
    pub fn protocol_only(mut self) -> RunMetrics {
        self.events = 0;
        self.sync_messages = 0;
        self.sim_time = 0;
        self
    }

    /// Average words per message (0 if no messages).
    pub fn avg_message_words(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.words as f64 / self.messages as f64
        }
    }

    /// Whether a trace summary's totals equal these aggregates.
    ///
    /// This is the invariant linking the two accounting paths: rounds,
    /// messages, and words summed over the trace's per-phase buckets — and
    /// the message count summed over the size histogram — must reproduce
    /// the aggregate counters exactly, on successful *and* failed runs.
    pub fn agrees_with(&self, summary: &crate::trace::TraceSummary) -> bool {
        self.rounds == summary.total_rounds()
            && self.messages == summary.total_messages()
            && self.words == summary.total_words()
            && self.messages == summary.size_histogram().iter().sum::<u64>()
            && self.faults == summary.fault_counters().copied().unwrap_or_default()
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} messages={} words={} max_msg_words={}",
            self.rounds, self.messages, self.words, self.max_message_words
        )?;
        if !self.faults.is_empty() {
            write!(f, " {}", self.faults)?;
        }
        if self.events != 0 || self.sync_messages != 0 || self.sim_time != 0 {
            write!(
                f,
                " events={} sync_messages={} sim_time={}",
                self.events, self.sync_messages, self.sim_time
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_composes() {
        let mut a = RunMetrics {
            rounds: 10,
            messages: 100,
            words: 300,
            max_message_words: 3,
            events: 7,
            sync_messages: 2,
            sim_time: 40,
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            rounds: 5,
            messages: 50,
            words: 500,
            max_message_words: 10,
            events: 3,
            sync_messages: 1,
            sim_time: 10,
            ..RunMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 15);
        assert_eq!(a.messages, 150);
        assert_eq!(a.words, 800);
        assert_eq!(a.max_message_words, 10);
        assert_eq!(a.events, 10);
        assert_eq!(a.sync_messages, 3);
        assert_eq!(a.sim_time, 50);
    }

    #[test]
    fn avg_words() {
        let m = RunMetrics {
            rounds: 1,
            messages: 4,
            words: 10,
            max_message_words: 4,
            ..RunMetrics::default()
        };
        assert!((m.avg_message_words() - 2.5).abs() < 1e-12);
        assert_eq!(RunMetrics::default().avg_message_words(), 0.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let m = RunMetrics {
            rounds: 2,
            messages: 3,
            words: 4,
            max_message_words: 5,
            ..RunMetrics::default()
        };
        let s = m.to_string();
        for needle in ["rounds=2", "messages=3", "words=4", "max_msg_words=5"] {
            assert!(s.contains(needle));
        }
        // Round-synchronous metrics keep their pre-async rendering.
        assert!(!s.contains("events="));
        let a = RunMetrics {
            events: 9,
            sync_messages: 6,
            sim_time: 33,
            ..m
        };
        let s = a.to_string();
        for needle in ["events=9", "sync_messages=6", "sim_time=33"] {
            assert!(s.contains(needle));
        }
    }

    #[test]
    fn protocol_only_zeroes_async_counters() {
        let m = RunMetrics {
            rounds: 2,
            messages: 3,
            words: 4,
            max_message_words: 5,
            events: 9,
            sync_messages: 6,
            sim_time: 33,
            ..RunMetrics::default()
        };
        let p = m.protocol_only();
        assert_eq!(p.rounds, 2);
        assert_eq!(p.messages, 3);
        assert_eq!((p.events, p.sync_messages, p.sim_time), (0, 0, 0));
        assert_eq!(p, p.protocol_only());
    }
}
