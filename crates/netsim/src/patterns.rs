//! Reusable protocol building blocks.
//!
//! The constructions in the paper are assembled from a handful of
//! communication patterns:
//!
//! * [`FloodProtocol`] — radius-bounded flooding ("every vertex in `V_i`
//!   notifies its neighbors…", Sect. 4.4 stage 1),
//! * [`MinIdBroadcast`] — distributed multi-source BFS computing, at every
//!   node, the distance to and identity of the nearest source with
//!   minimum-id tie-breaking; this is exactly the first stage of the
//!   Fibonacci construction (computing `p_i(v)`) and doubles as a leader
//!   election,
//! * [`ConvergecastCount`] — counting/aggregation up a rooted tree, the
//!   primitive behind the candidate-edge aggregation of Theorem 2's
//!   implementation.
//!
//! Each is a complete [`Protocol`] usable on its own and serves as a tested
//! reference for the composite algorithm protocols in the `ultrasparse`
//! crate.

use spanner_graph::NodeId;

use crate::sync::{Ctx, MessageSize, Protocol};

/// Radius-bounded flood: sources start "reached" and the wave propagates
/// `radius` hops. Message: remaining time-to-live.
#[derive(Debug, Clone)]
pub struct FloodProtocol {
    source: bool,
    radius: u32,
    reached: bool,
    /// Distance at which the wave arrived (0 for sources).
    dist: Option<u32>,
}

impl FloodProtocol {
    /// A node that is a source iff `source`, flooding `radius` hops.
    pub fn new(source: bool, radius: u32) -> Self {
        FloodProtocol {
            source,
            radius,
            reached: source,
            dist: if source { Some(0) } else { None },
        }
    }

    /// Whether the wave reached this node.
    pub fn reached(&self) -> bool {
        self.reached
    }

    /// Hop distance from the nearest source, if reached.
    pub fn dist(&self) -> Option<u32> {
        self.dist
    }
}

impl Protocol for FloodProtocol {
    type Msg = u64; // remaining TTL

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.source && self.radius > 0 {
            ctx.broadcast(self.radius as u64 - 1);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
        let best = inbox.iter().map(|&(_, ttl)| ttl).max();
        if let Some(ttl) = best {
            if !self.reached {
                self.reached = true;
                self.dist = Some(ctx.round());
                if ttl > 0 {
                    ctx.broadcast(ttl - 1);
                }
            }
        }
    }
}

/// A (distance, source-id) pair flooded by [`MinIdBroadcast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceInfo {
    /// Hop distance to the attributed source.
    pub dist: u32,
    /// The attributed source (minimum id among nearest sources).
    pub source: NodeId,
}

impl MessageSize for SourceInfo {
    fn words(&self) -> usize {
        2
    }
}

/// Distributed multi-source BFS with min-id attribution, radius-bounded.
///
/// After the run, every node within `radius` of a source knows its nearest
/// source (ties to the minimum id) and the exact distance — the
/// `p_i(v)` computation of Sect. 4.4: *"In general, in the kth step each
/// vertex v receives a message from each neighbor w indicating the
/// V_i-vertex with the minimum unique identifier at distance k−1 from w."*
///
/// Runs in `radius + 1` rounds with 2-word messages.
#[derive(Debug, Clone)]
pub struct MinIdBroadcast {
    is_source: bool,
    radius: u32,
    /// Best (dist, source) known so far.
    best: Option<SourceInfo>,
    /// Last value broadcast (to avoid resending unchanged state).
    sent: Option<SourceInfo>,
}

impl MinIdBroadcast {
    /// A node that is a source iff `is_source`, within radius `radius`.
    pub fn new(is_source: bool, radius: u32) -> Self {
        MinIdBroadcast {
            is_source,
            radius,
            best: None,
            sent: None,
        }
    }

    /// The attributed nearest source, if any within the radius.
    pub fn nearest(&self) -> Option<SourceInfo> {
        self.best
    }
}

impl Protocol for MinIdBroadcast {
    type Msg = SourceInfo;

    fn init(&mut self, ctx: &mut Ctx<'_, SourceInfo>) {
        if self.is_source {
            let info = SourceInfo {
                dist: 0,
                source: ctx.me(),
            };
            self.best = Some(info);
            if self.radius > 0 {
                ctx.broadcast(info);
                self.sent = Some(info);
            }
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, SourceInfo>, inbox: &[(NodeId, SourceInfo)]) {
        let mut improved = false;
        for &(_, info) in inbox {
            let cand = SourceInfo {
                dist: info.dist + 1,
                source: info.source,
            };
            let better = match self.best {
                None => true,
                Some(b) => (cand.dist, cand.source) < (b.dist, b.source),
            };
            if better {
                self.best = Some(cand);
                improved = true;
            }
        }
        if improved {
            let b = self.best.expect("improved implies set");
            if b.dist < self.radius && self.sent != Some(b) {
                ctx.broadcast(b);
                self.sent = Some(b);
            }
        }
    }
}

/// Convergecast up a fixed tree: each node learns the number of nodes in
/// its subtree; the root ends with the tree size.
///
/// `parent[v]` defines the tree (roots have `None`); nodes with no children
/// fire immediately, internal nodes fire once all children reported.
/// Runs in (tree height) rounds with 1-word messages.
#[derive(Debug, Clone)]
pub struct ConvergecastCount {
    parent: Option<NodeId>,
    expected_children: usize,
    reports: usize,
    subtotal: u64,
    fired: bool,
}

impl ConvergecastCount {
    /// A node with the given parent and number of tree children.
    pub fn new(parent: Option<NodeId>, children: usize) -> Self {
        ConvergecastCount {
            parent,
            expected_children: children,
            reports: 0,
            subtotal: 1,
            fired: false,
        }
    }

    /// Subtree size accumulated at this node (valid once the run ends).
    pub fn subtree_size(&self) -> u64 {
        self.subtotal
    }

    fn maybe_fire(&mut self, ctx: &mut Ctx<'_, u64>) {
        if !self.fired && self.reports == self.expected_children {
            self.fired = true;
            if let Some(p) = self.parent {
                ctx.send(p, self.subtotal);
            }
        }
    }
}

impl Protocol for ConvergecastCount {
    type Msg = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.maybe_fire(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
        for &(_, count) in inbox {
            self.reports += 1;
            self.subtotal += count;
        }
        self.maybe_fire(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::MessageBudget;
    use crate::sync::Network;
    use spanner_graph::traversal::{bfs_tree, multi_source_bfs};
    use spanner_graph::{generators, Graph};

    #[test]
    fn flood_reaches_exactly_radius() {
        let g = generators::path(10);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net.run(|v, _| FloodProtocol::new(v.0 == 0, 4), 32).unwrap();
        for (v, s) in states.iter().enumerate() {
            assert_eq!(s.reached(), v <= 4, "node {v}");
            if v <= 4 {
                assert_eq!(s.dist(), Some(v as u32));
            }
        }
        // The farthest reached node (distance 4) hears the wave in round 4.
        assert_eq!(net.metrics().rounds, 4);
    }

    #[test]
    fn flood_radius_zero_stays_home() {
        let g = generators::path(4);
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net.run(|v, _| FloodProtocol::new(v.0 == 2, 0), 8).unwrap();
        assert!(states[2].reached());
        assert!(!states[1].reached() && !states[3].reached());
        assert_eq!(net.metrics().messages, 0);
    }

    #[test]
    fn min_id_broadcast_matches_sequential_bfs() {
        let g = generators::erdos_renyi_gnm(60, 150, 3);
        let sources: Vec<NodeId> = vec![NodeId(5), NodeId(17), NodeId(42)];
        let radius = 60u32;
        let mut net = Network::new(&g, MessageBudget::Words(2), 1);
        let states = net
            .run(
                |v, _| MinIdBroadcast::new(sources.contains(&v), radius),
                256,
            )
            .unwrap();
        let reference = multi_source_bfs(&g, &sources);
        for v in g.nodes() {
            let got = states[v.index()].nearest();
            match (got, reference.dist[v.index()]) {
                (Some(info), Some(d)) => {
                    assert_eq!(info.dist, d, "distance at {v}");
                    assert_eq!(
                        Some(info.source),
                        reference.source[v.index()],
                        "source at {v}"
                    );
                }
                (None, None) => {}
                (g2, r2) => panic!("mismatch at {v}: {g2:?} vs {r2:?}"),
            }
        }
    }

    #[test]
    fn min_id_broadcast_respects_radius() {
        let g = generators::path(10);
        let mut net = Network::new(&g, MessageBudget::Words(2), 1);
        let states = net
            .run(|v, _| MinIdBroadcast::new(v.0 == 0, 3), 64)
            .unwrap();
        for (v, st) in states.iter().enumerate() {
            assert_eq!(st.nearest().is_some(), v <= 3, "node {v}");
        }
    }

    #[test]
    fn convergecast_counts_subtrees() {
        let g: Graph = generators::grid(4, 5);
        let root = NodeId(0);
        let tree = bfs_tree(&g, root);
        let mut children = vec![0usize; g.node_count()];
        for v in g.nodes() {
            if let Some(p) = tree.parent[v.index()] {
                children[p.index()] += 1;
            }
        }
        let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
        let states = net
            .run(
                |v, _| ConvergecastCount::new(tree.parent[v.index()], children[v.index()]),
                128,
            )
            .unwrap();
        assert_eq!(states[root.index()].subtree_size(), 20);
        // Every leaf has subtotal 1.
        for v in g.nodes() {
            if children[v.index()] == 0 {
                assert_eq!(states[v.index()].subtree_size(), 1);
            }
        }
        // Exactly one message per non-root node.
        assert_eq!(net.metrics().messages, 19);
    }
}
