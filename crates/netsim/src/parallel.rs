//! Parallel round executor.
//!
//! Round-synchronous simulation parallelizes naturally: within a round every
//! node reads only its inbox and private state, so nodes can be processed
//! concurrently. This module runs the same [`Protocol`]
//! semantics as [`Network::run`](crate::Network::run) across worker threads
//! (crossbeam scoped threads), **deterministically**: per-node RNGs are
//! derived from the master seed exactly as in the sequential executor and
//! inboxes are sorted by sender, so the two executors produce identical
//! final states (tested below).
//!
//! Useful for big-n experiment sweeps; the sequential executor remains the
//! reference implementation.

use rand::rngs::SmallRng;

use spanner_graph::{Graph, NodeId};

use crate::budget::{BudgetViolation, MessageBudget};
use crate::metrics::RunMetrics;
use crate::rng::node_rng;
use crate::sync::{Ctx, MessageSize, Protocol, RunError};

/// Outcome of a parallel run: final states plus cost accounting.
#[derive(Debug)]
pub struct ParallelOutcome<P> {
    /// Final protocol states, indexed by node.
    pub states: Vec<P>,
    /// Aggregate cost of the run.
    pub metrics: RunMetrics,
}

/// Runs `factory`-created protocols to quiescence using `threads` workers.
///
/// Semantics are identical to [`Network::run`](crate::Network::run); in
/// particular the result is deterministic in `seed` and independent of
/// `threads`.
///
/// # Errors
///
/// [`RunError::RoundLimit`] if not quiescent within `max_rounds`;
/// [`RunError::Budget`] if any message exceeds `budget`.
///
/// # Panics
///
/// Panics if `threads == 0` or if a protocol violates the model (messages a
/// non-neighbor or double-sends), like the sequential executor.
pub fn run_parallel<P, F>(
    graph: &Graph,
    budget: MessageBudget,
    seed: u64,
    factory: F,
    max_rounds: u32,
    threads: usize,
) -> Result<ParallelOutcome<P>, RunError>
where
    P: Protocol + Send,
    P::Msg: Send,
    F: Fn(NodeId, &mut SmallRng) -> P + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let n = graph.node_count();
    let adjacency: Vec<Vec<NodeId>> = graph
        .nodes()
        .map(|v| {
            let mut ns: Vec<NodeId> = graph.neighbor_ids(v).collect();
            ns.sort_unstable();
            ns
        })
        .collect();

    let mut rngs: Vec<SmallRng> = (0..n as u32).map(|v| node_rng(seed, v, 0)).collect();
    let mut nodes: Vec<P> = rngs
        .iter_mut()
        .enumerate()
        .map(|(v, rng)| factory(NodeId(v as u32), rng))
        .collect();

    let mut metrics = RunMetrics::default();
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();

    // Chunked parallel step: returns (per-sender outboxes).
    // Each worker owns a contiguous slice of nodes.
    let chunk = n.div_ceil(threads).max(1);

    let step = |nodes: &mut [P],
                rngs: &mut [SmallRng],
                delivering: &mut [Vec<(NodeId, P::Msg)>],
                round: u32|
     -> Vec<Vec<(NodeId, P::Msg)>> {
        let mut all_outboxes: Vec<Vec<(NodeId, P::Msg)>> = Vec::with_capacity(n);
        if n == 0 {
            return all_outboxes;
        }
        let results: Vec<Vec<Vec<(NodeId, P::Msg)>>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let node_chunks = nodes.chunks_mut(chunk);
            let rng_chunks = rngs.chunks_mut(chunk);
            let del_chunks = delivering.chunks_mut(chunk);
            for (ci, ((nchunk, rchunk), dchunk)) in
                node_chunks.zip(rng_chunks).zip(del_chunks).enumerate()
            {
                let adjacency = &adjacency;
                handles.push(scope.spawn(move |_| {
                    let base = ci * chunk;
                    let mut outboxes = Vec::with_capacity(nchunk.len());
                    for (i, node) in nchunk.iter_mut().enumerate() {
                        let v = base + i;
                        let mut outbox = Vec::new();
                        let mut inbox = std::mem::take(&mut dchunk[i]);
                        inbox.sort_by_key(|&(s, _)| s);
                        {
                            let mut ctx = Ctx::new_for_executor(
                                NodeId(v as u32),
                                n,
                                round,
                                &adjacency[v],
                                &mut rchunk[i],
                                &mut outbox,
                            );
                            if round == 0 {
                                node.init(&mut ctx);
                            } else {
                                node.round(&mut ctx, &inbox);
                            }
                        }
                        outboxes.push(outbox);
                    }
                    outboxes
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scope failed");
        for mut chunk_out in results {
            all_outboxes.append(&mut chunk_out);
        }
        all_outboxes
    };

    let mut round: u32 = 0;
    let mut in_flight: u64;

    // Init (round 0) then the main loop.
    let mut fresh: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let outboxes = step(&mut nodes, &mut rngs, &mut fresh, 0);
    in_flight = deliver(outboxes, &mut inboxes, budget, 0, &mut metrics)?;

    loop {
        if in_flight == 0 && nodes.iter().all(Protocol::done) {
            break;
        }
        if round >= max_rounds {
            return Err(RunError::RoundLimit { max_rounds });
        }
        round += 1;
        metrics.rounds = round;
        let mut delivering = std::mem::replace(&mut inboxes, (0..n).map(|_| Vec::new()).collect());
        let outboxes = step(&mut nodes, &mut rngs, &mut delivering, round);
        in_flight = deliver(outboxes, &mut inboxes, budget, round, &mut metrics)?;
    }

    Ok(ParallelOutcome {
        states: nodes,
        metrics,
    })
}

/// Validates and routes all outboxes into inboxes; returns messages sent.
fn deliver<M: MessageSize>(
    outboxes: Vec<Vec<(NodeId, M)>>,
    inboxes: &mut [Vec<(NodeId, M)>],
    budget: MessageBudget,
    round: u32,
    metrics: &mut RunMetrics,
) -> Result<u64, RunError> {
    let mut sent = 0u64;
    for (v, outbox) in outboxes.into_iter().enumerate() {
        let sender = NodeId(v as u32);
        for (to, msg) in outbox {
            let words = msg.words();
            if !budget.allows(words) {
                return Err(RunError::Budget(BudgetViolation {
                    sender,
                    receiver: to,
                    round,
                    words,
                    budget,
                }));
            }
            metrics.messages += 1;
            metrics.words += words as u64;
            metrics.max_message_words = metrics.max_message_words.max(words);
            inboxes[to.index()].push((sender, msg));
            sent += 1;
        }
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::MinIdBroadcast;
    use crate::sync::Network;
    use spanner_graph::generators;

    #[test]
    fn parallel_matches_sequential() {
        let g = generators::erdos_renyi_gnm(80, 240, 7);
        let sources = |v: NodeId| v.0.is_multiple_of(13);
        let mut net = Network::new(&g, MessageBudget::Words(2), 99);
        let seq = net
            .run(|v, _| MinIdBroadcast::new(sources(v), 40), 256)
            .unwrap();
        for threads in [1, 2, 4] {
            let par = run_parallel(
                &g,
                MessageBudget::Words(2),
                99,
                |v, _| MinIdBroadcast::new(sources(v), 40),
                256,
                threads,
            )
            .unwrap();
            for v in g.nodes() {
                assert_eq!(
                    seq[v.index()].nearest(),
                    par.states[v.index()].nearest(),
                    "node {v} with {threads} threads"
                );
            }
            assert_eq!(par.metrics.rounds, net.metrics().rounds);
            assert_eq!(par.metrics.messages, net.metrics().messages);
            assert_eq!(par.metrics.words, net.metrics().words);
        }
    }

    #[test]
    fn parallel_round_limit() {
        #[derive(Debug)]
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.broadcast(1);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {
                ctx.broadcast(1);
            }
        }
        let g = generators::cycle(6);
        let err = run_parallel(&g, MessageBudget::CONGEST, 1, |_, _| Chatter, 3, 2).unwrap_err();
        assert_eq!(err, RunError::RoundLimit { max_rounds: 3 });
    }

    #[test]
    fn parallel_empty_graph() {
        struct Quiet;
        impl Protocol for Quiet {
            type Msg = u64;
            fn init(&mut self, _: &mut Ctx<'_, u64>) {}
            fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
        }
        let g = spanner_graph::Graph::empty(0);
        let out = run_parallel(&g, MessageBudget::CONGEST, 1, |_, _| Quiet, 4, 3).unwrap();
        assert!(out.states.is_empty());
        assert_eq!(out.metrics.messages, 0);
    }
}
