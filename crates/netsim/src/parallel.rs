//! Parallel round executor.
//!
//! Round-synchronous simulation parallelizes naturally: within a round every
//! node reads only its inbox and private state, so nodes can be processed
//! concurrently. [`ParallelNetwork`] runs the same [`Protocol`] semantics as
//! [`Network::run`](crate::Network::run) across worker threads,
//! **deterministically**: per-node RNGs are derived from the master seed
//! exactly as in the sequential executor, inboxes are sorted by sender, and
//! messages are routed in global sender order, so the two executors produce
//! identical final states *and identical metrics* — including the partial
//! accounting left behind by a failed run (tested below and in
//! `tests/executor_parity.rs`).
//!
//! # Hot-path design
//!
//! The worker pool is created **once per run** with `std::thread::scope` and
//! parked on a pair of round barriers; no threads are spawned per round.
//! Each worker owns one contiguous chunk of nodes behind a `Mutex` (contended
//! only at round boundaries, when the coordinator routes messages). Per
//! chunk, inboxes and outboxes are single flat arenas with per-node offset
//! tables — no per-node `Vec` growth: workers append sends to the chunk's
//! outbox arena and record each node's boundary; the coordinator drains the
//! arenas in global sender order into one staging buffer and
//! counting-scatters it back into the chunk inbox arenas (stable, so every
//! inbox slice stays sender-sorted). All buffers keep their capacity across
//! rounds, so the steady-state loop performs no per-round heap allocation —
//! mirroring the sequential executor's arenas.
//!
//! Useful for big-n experiment sweeps; the sequential executor remains the
//! reference implementation.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::SmallRng;

use spanner_graph::pool::RoundGate;
use spanner_graph::{Graph, NodeId};

use crate::budget::{BudgetViolation, MessageBudget};
use crate::csr::CsrAdjacency;
use crate::faults::{FaultPlan, FaultState};
use crate::metrics::RunMetrics;
use crate::rng::node_rng;
use crate::sync::{Ctx, MessageSize, Protocol, RunError};
use crate::trace::{NullSink, PhaseAction, TraceSink, Tracer};

/// Outcome of a [`run_parallel`] call: final states plus cost accounting.
#[derive(Debug)]
pub struct ParallelOutcome<P> {
    /// Final protocol states, indexed by node.
    pub states: Vec<P>,
    /// Aggregate cost of the run.
    pub metrics: RunMetrics,
}

/// Everything one worker thread owns: a contiguous chunk of nodes with their
/// RNGs, inboxes, and outboxes. Locked by the worker while a round executes
/// and by the coordinator while messages are routed; the two phases are
/// separated by barriers, so the lock is never contended.
struct ChunkSlot<P: Protocol> {
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    /// Flat inbox arena: node `i`'s inbox is
    /// `inbox_flat[inbox_off[i]..inbox_off[i + 1]]`, sender-sorted. Rebuilt
    /// by the coordinator's counting scatter each round.
    inbox_flat: Vec<(NodeId, P::Msg)>,
    inbox_off: Vec<u32>,
    /// Flat outbox arena: workers append in node order and record node
    /// `i`'s boundary in `out_off[i + 1]`, so the coordinator can drain the
    /// arena front-to-back while attributing every message to its sender.
    out_flat: Vec<(NodeId, P::Msg)>,
    out_off: Vec<u32>,
    /// Duplicate-send stamps (indexed by *target* node, so length n).
    seen: Vec<u64>,
    stamp: u64,
    /// Per-node phase declarations buffered during the round; the
    /// coordinator drains them in global sender order while routing.
    phases: Vec<Vec<PhaseAction>>,
    /// Whether every node in this chunk reported [`Protocol::done`] after
    /// the most recent round.
    done: bool,
}

/// A synchronous network executed by a pool of worker threads.
///
/// The parallel counterpart of [`Network`](crate::Network): construct once,
/// [`ParallelNetwork::run`] to quiescence, read [`ParallelNetwork::metrics`]
/// afterwards — the metrics are retained even when `run` returns an error,
/// with exactly the partial accounting the sequential executor would leave.
///
/// Like the sequential executor, the topology is one `Arc`'d
/// [`CsrAdjacency`]; [`ParallelNetwork::from_csr`] runs straight off a
/// streamed adjacency with no [`Graph`] ever materialized.
pub struct ParallelNetwork {
    budget: MessageBudget,
    seed: u64,
    threads: usize,
    metrics: RunMetrics,
    adjacency: Arc<CsrAdjacency>,
    /// Fault schedule, if any; `None` selects the pre-fault code path.
    faults: Option<FaultPlan>,
}

impl ParallelNetwork {
    /// A parallel network on `graph` with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(graph: &Graph, budget: MessageBudget, seed: u64, threads: usize) -> Self {
        ParallelNetwork::from_csr(
            Arc::new(CsrAdjacency::from_graph(graph)),
            budget,
            seed,
            threads,
        )
    }

    /// Like [`ParallelNetwork::new`], reusing an already-built adjacency
    /// (e.g. one shared with a sequential [`Network`](crate::Network)).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or if `adjacency` was built for a different
    /// node count.
    pub fn with_adjacency(
        graph: &Graph,
        adjacency: CsrAdjacency,
        budget: MessageBudget,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert_eq!(
            adjacency.node_count(),
            graph.node_count(),
            "adjacency built for a different graph"
        );
        ParallelNetwork::from_csr(Arc::new(adjacency), budget, seed, threads)
    }

    /// A parallel network straight over a shared CSR adjacency — the
    /// zero-`Graph` construction path. Runs are byte-identical (states,
    /// metrics, traces) to a [`ParallelNetwork::new`] over the equivalent
    /// graph, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn from_csr(
        adjacency: Arc<CsrAdjacency>,
        budget: MessageBudget,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        ParallelNetwork {
            budget,
            seed,
            threads,
            metrics: RunMetrics::default(),
            adjacency,
            faults: None,
        }
    }

    /// Injects faults from `plan` on subsequent runs, exactly as
    /// [`Network::with_faults`](crate::Network::with_faults) does: the
    /// resulting states, metrics, and trace stream are byte-identical to
    /// the sequential executor's at any thread count.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fault schedule in force, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The message budget in force.
    pub fn budget(&self) -> MessageBudget {
        self.budget
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cost accounting of the most recent [`ParallelNetwork::run`] —
    /// partial (but sequentially identical) if the run failed.
    pub fn metrics(&self) -> RunMetrics {
        self.metrics
    }

    /// The shared sorted adjacency.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// A clone of the `Arc` holding the adjacency, for sharing with other
    /// executors, drivers, or verification passes.
    pub fn adjacency_arc(&self) -> Arc<CsrAdjacency> {
        Arc::clone(&self.adjacency)
    }

    /// Runs `factory`-created protocols to quiescence on the worker pool.
    ///
    /// Semantics are identical to [`Network::run`](crate::Network::run); in
    /// particular the result is deterministic in `seed` and independent of
    /// `threads`.
    ///
    /// # Errors
    ///
    /// [`RunError::RoundLimit`] if not quiescent within `max_rounds`;
    /// [`RunError::Budget`] if any message exceeds the budget. Either way
    /// [`ParallelNetwork::metrics`] reflects everything accepted before the
    /// error, matching the sequential executor word for word.
    pub fn run<P, F>(&mut self, factory: F, max_rounds: u32) -> Result<Vec<P>, RunError>
    where
        P: Protocol + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        self.run_traced(factory, max_rounds, &mut NullSink)
    }

    /// Like [`ParallelNetwork::run`], streaming
    /// [`TraceEvent`](crate::TraceEvent)s into `sink`.
    ///
    /// The stream is **identical** to the sequential
    /// [`Network::run_traced`](crate::Network::run_traced) stream for the
    /// same run, regardless of `threads`: protocols buffer their phase
    /// declarations while the workers execute, and the coordinator applies
    /// them — together with the per-message accounting — in global sender
    /// order during routing, the same order the sequential flush uses.
    /// The sink is only ever touched by the coordinator thread.
    ///
    /// # Errors
    ///
    /// Same as [`ParallelNetwork::run`].
    pub fn run_traced<P, F>(
        &mut self,
        factory: F,
        max_rounds: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<P>, RunError>
    where
        P: Protocol + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        let mut tracer = Tracer::new(sink);
        // Monomorphized on the tracing and fault decisions like the
        // sequential executor: the untraced unfaulted routing loop carries
        // no per-message tracer or fault branches.
        let result = match (tracer.enabled(), self.faults.is_some()) {
            (false, false) => {
                self.run_inner::<P, F, false, false>(factory, max_rounds, &mut tracer)
            }
            (true, false) => self.run_inner::<P, F, true, false>(factory, max_rounds, &mut tracer),
            (false, true) => self.run_inner::<P, F, false, true>(factory, max_rounds, &mut tracer),
            (true, true) => self.run_inner::<P, F, true, true>(factory, max_rounds, &mut tracer),
        };
        tracer.finish(&self.metrics, result.as_ref().err());
        result
    }

    fn run_inner<P, F, const TRACED: bool, const FAULTS: bool>(
        &mut self,
        mut factory: F,
        max_rounds: u32,
        tracer: &mut Tracer<'_>,
    ) -> Result<Vec<P>, RunError>
    where
        P: Protocol + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        self.metrics = RunMetrics::default();
        let n = self.adjacency.node_count();
        // The workers consult the plan for their skip decisions (pure
        // functions, so no coordination is needed); the coordinator owns
        // the fault engine and applies message fates during routing — the
        // same global sender order the sequential flush uses.
        let plan: FaultPlan = self.faults.clone().unwrap_or_default();
        let mut fstate: FaultState<P::Msg> =
            FaultState::new(plan.clone(), if FAULTS { n } else { 0 });
        if n == 0 {
            // Match the sequential stream: the (empty) init round is traced.
            if TRACED {
                tracer.begin_round(0);
                tracer.end_round();
            }
            return Ok(Vec::new());
        }

        let chunk = n.div_ceil(self.threads).max(1);
        let nchunks = n.div_ceil(chunk);

        // The factory runs on the coordinator, in node order, exactly as in
        // the sequential executor — same RNG streams, same call sequence.
        let slots: Vec<Mutex<ChunkSlot<P>>> = (0..nchunks)
            .map(|ci| {
                let lo = ci * chunk;
                let hi = ((ci + 1) * chunk).min(n);
                let mut rngs: Vec<SmallRng> =
                    (lo..hi).map(|v| node_rng(self.seed, v as u32, 0)).collect();
                let nodes: Vec<P> = (lo..hi)
                    .map(|v| factory(NodeId(v as u32), &mut rngs[v - lo]))
                    .collect();
                Mutex::new(ChunkSlot {
                    nodes,
                    rngs,
                    inbox_flat: Vec::new(),
                    inbox_off: vec![0u32; hi - lo + 1],
                    out_flat: Vec::new(),
                    out_off: vec![0u32; hi - lo + 1],
                    seen: vec![0u64; n],
                    stamp: 0,
                    phases: (lo..hi).map(|_| Vec::new()).collect(),
                    done: false,
                })
            })
            .collect();

        let gate = RoundGate::new(nchunks);
        let round_no = AtomicU32::new(0);
        let adjacency = &self.adjacency;
        let budget = self.budget;
        let metrics = &mut self.metrics;
        let plan = &plan;

        let result: Result<(), RunError> = std::thread::scope(|scope| {
            for (ci, slot) in slots.iter().enumerate() {
                let (gate, round_no) = (&gate, &round_no);
                let base = ci * chunk;
                scope.spawn(move || {
                    while gate.worker_begin() {
                        let round = round_no.load(Ordering::Acquire);
                        let mut guard = slot.lock().expect("worker lock");
                        let ChunkSlot {
                            nodes,
                            rngs,
                            inbox_flat,
                            inbox_off,
                            out_flat,
                            out_off,
                            seen,
                            stamp,
                            phases,
                            done,
                        } = &mut *guard;
                        out_flat.clear();
                        out_off[0] = 0;
                        for i in 0..nodes.len() {
                            let v = NodeId((base + i) as u32);
                            // Crashed or stuttering nodes execute nothing this
                            // round; an empty outbox range keeps the
                            // coordinator from routing on their behalf. (Their
                            // inbox slice is necessarily empty: the fault
                            // engine never delivers to a skipped node.) The
                            // skip decision is a pure function of (plan, v,
                            // round), identical on every executor and thread.
                            if FAULTS && plan.skips(v, round) {
                                phases[i].clear();
                                out_off[i + 1] = out_flat.len() as u32;
                                continue;
                            }
                            // Sorted for free: the coordinator's counting
                            // scatter is stable over the global ascending
                            // sender order, so each inbox slice is already
                            // sorted.
                            let inbox =
                                &inbox_flat[inbox_off[i] as usize..inbox_off[i + 1] as usize];
                            debug_assert!(inbox.windows(2).all(|w| w[0].0 <= w[1].0));
                            *stamp += 1;
                            let mut ctx = Ctx::new_for_executor(
                                v,
                                n,
                                round,
                                adjacency.neighbors(v),
                                &mut rngs[i],
                                out_flat,
                                seen,
                                *stamp,
                                &mut phases[i],
                                TRACED,
                            );
                            if round == 0 {
                                nodes[i].init(&mut ctx);
                            } else {
                                nodes[i].round(&mut ctx, inbox);
                            }
                            out_off[i + 1] = out_flat.len() as u32;
                        }
                        *done = nodes.iter().enumerate().all(|(i, p)| {
                            p.done() || (FAULTS && plan.crashed(NodeId((base + i) as u32), round))
                        });
                        drop(guard);
                        gate.worker_end();
                    }
                });
            }

            // Coordinator. Workers park on the gate's start barrier; the
            // final `shutdown` releases them to exit, and the scope joins
            // them on the way out.
            let shutdown = || gate.shutdown();

            // Routes every outbox into its target inbox in global sender
            // order (chunks are contiguous and ascending, so chunk order ×
            // node order = node order). Budget checks and metric updates
            // happen in that same order, which is what makes the partial
            // accounting of a failed run identical to the sequential path.
            // Sends are staged as (receiver, sender, msg) and then
            // counting-scattered into the chunk inbox arenas — the same
            // stable scatter the sequential executor uses, split per chunk.
            // All four buffers keep their capacity across rounds.
            let mut staging: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();
            let mut counts: Vec<u32> = vec![0; n];
            let mut cursor: Vec<u32> = vec![0; n];
            let mut bases: Vec<*mut (NodeId, P::Msg)> = Vec::with_capacity(nchunks);
            let mut deliver = |round: u32,
                               metrics: &mut RunMetrics,
                               fstate: &mut FaultState<P::Msg>,
                               tracer: &mut Tracer<'_>|
             -> Result<(u64, bool), BudgetViolation> {
                let mut guards: Vec<MutexGuard<'_, ChunkSlot<P>>> = slots
                    .iter()
                    .map(|m| m.lock().expect("route lock"))
                    .collect();
                for (ci, slot) in guards.iter_mut().enumerate() {
                    let g = &mut **slot;
                    let nlen = g.nodes.len();
                    let mut sends = g.out_flat.drain(..);
                    for i in 0..nlen {
                        let sender = NodeId((ci * chunk + i) as u32);
                        // Phase declarations first, then the node's
                        // messages — the order the sequential flush uses.
                        if TRACED {
                            tracer.apply_actions(&mut g.phases[i]);
                        }
                        let cnt = (g.out_off[i + 1] - g.out_off[i]) as usize;
                        if TRACED {
                            tracer.on_outbox(cnt);
                        }
                        for _ in 0..cnt {
                            let (to, msg) = sends.next().expect("outbox offsets tile the arena");
                            let words = msg.words();
                            if !budget.allows(words) {
                                return Err(BudgetViolation {
                                    sender,
                                    receiver: to,
                                    round,
                                    words,
                                    budget,
                                });
                            }
                            metrics.messages += 1;
                            metrics.words += words as u64;
                            metrics.max_message_words = metrics.max_message_words.max(words);
                            if TRACED {
                                tracer.on_message(words);
                            }
                            if FAULTS {
                                fstate.accept(round, sender, to, msg);
                            } else {
                                staging.push((to, sender, msg));
                            }
                        }
                    }
                }
                let in_flight;
                if FAULTS {
                    // Materialize next round's inboxes through the fault
                    // engine; messages still pending (delayed or held for a
                    // stutterer) stay in flight. `flush_due` emits receivers
                    // in ascending global order, so appending chunk by chunk
                    // leaves each arena receiver-grouped, and the counts
                    // prefix-sum into the offset tables.
                    counts.fill(0);
                    for g in guards.iter_mut() {
                        g.inbox_flat.clear();
                    }
                    let sunk = fstate.flush_due(round + 1, |to, s, m| {
                        counts[to.index()] += 1;
                        guards[to.index() / chunk].inbox_flat.push((s, m));
                    });
                    for (ci, slot) in guards.iter_mut().enumerate() {
                        let g = &mut **slot;
                        let lo = ci * chunk;
                        g.inbox_off[0] = 0;
                        for i in 0..g.nodes.len() {
                            g.inbox_off[i + 1] = g.inbox_off[i] + counts[lo + i];
                        }
                        debug_assert_eq!(
                            *g.inbox_off.last().expect("offset table") as usize,
                            g.inbox_flat.len()
                        );
                    }
                    in_flight = sunk + fstate.in_flight();
                } else {
                    // Stable counting scatter of the staged sends into the
                    // chunk inbox arenas (see `sync::scatter` for the
                    // single-arena version of the same idea).
                    in_flight = staging.len() as u64;
                    counts.fill(0);
                    for &(to, _, _) in staging.iter() {
                        counts[to.index()] += 1;
                    }
                    for (ci, slot) in guards.iter_mut().enumerate() {
                        let g = &mut **slot;
                        let lo = ci * chunk;
                        g.inbox_off[0] = 0;
                        for i in 0..g.nodes.len() {
                            g.inbox_off[i + 1] = g.inbox_off[i] + counts[lo + i];
                            cursor[lo + i] = g.inbox_off[i];
                        }
                        let total = *g.inbox_off.last().expect("offset table") as usize;
                        g.inbox_flat.clear();
                        g.inbox_flat.reserve(total);
                    }
                    bases.clear();
                    bases.extend(guards.iter_mut().map(|g| g.inbox_flat.as_mut_ptr()));
                    // SAFETY: the counting pass guarantees each chunk's
                    // bucket cursors tile `0..total` of that chunk's reserved
                    // arena exactly, so each slot is written exactly once
                    // before set_len. Nothing between the writes can panic
                    // (ptr::write and u32 increments on values the counting
                    // pass already produced), so no partially-initialized
                    // buffer is ever observed; the base pointers stay valid
                    // because nothing touches the arenas until set_len.
                    unsafe {
                        for (to, sender, msg) in staging.drain(..) {
                            let c = &mut cursor[to.index()];
                            std::ptr::write(
                                bases[to.index() / chunk].add(*c as usize),
                                (sender, msg),
                            );
                            *c += 1;
                        }
                        for g in guards.iter_mut() {
                            let total = *g.inbox_off.last().expect("offset table") as usize;
                            g.inbox_flat.set_len(total);
                        }
                    }
                }
                let all_done = guards.iter().all(|g| g.done);
                Ok((in_flight, all_done))
            };

            // Init phase (round 0).
            if TRACED {
                tracer.begin_round(0);
            }
            if FAULTS {
                fstate.begin_round(0);
            }
            gate.open();
            gate.close();
            let (mut in_flight, mut all_done) = match deliver(0, metrics, &mut fstate, tracer) {
                Ok(v) => v,
                Err(v) => {
                    metrics.faults = fstate.counters();
                    shutdown();
                    return Err(RunError::Budget(v));
                }
            };
            if FAULTS {
                metrics.faults = fstate.counters();
            }
            if TRACED {
                tracer.end_round();
            }

            let mut round: u32 = 0;
            loop {
                if in_flight == 0 && all_done {
                    shutdown();
                    return Ok(());
                }
                if round >= max_rounds {
                    shutdown();
                    return Err(RunError::RoundLimit { max_rounds });
                }
                round += 1;
                metrics.rounds = round;
                if TRACED {
                    tracer.begin_round(round);
                }
                if FAULTS {
                    fstate.begin_round(round);
                }
                round_no.store(round, Ordering::Release);
                gate.open();
                gate.close();
                (in_flight, all_done) = match deliver(round, metrics, &mut fstate, tracer) {
                    Ok(v) => v,
                    Err(v) => {
                        metrics.faults = fstate.counters();
                        shutdown();
                        return Err(RunError::Budget(v));
                    }
                };
                if FAULTS {
                    metrics.faults = fstate.counters();
                }
                if TRACED {
                    tracer.end_round();
                }
            }
        });

        result.map(|()| {
            slots
                .into_iter()
                .flat_map(|m| m.into_inner().expect("slot poisoned").nodes)
                .collect()
        })
    }
}

/// Runs `factory`-created protocols to quiescence using `threads` workers.
///
/// Compatibility wrapper around [`ParallelNetwork`]; prefer the struct when
/// you need [`ParallelNetwork::metrics`] after a failed run.
///
/// # Errors
///
/// [`RunError::RoundLimit`] if not quiescent within `max_rounds`;
/// [`RunError::Budget`] if any message exceeds `budget`.
///
/// # Panics
///
/// Panics if `threads == 0` or if a protocol violates the model (messages a
/// non-neighbor or double-sends), like the sequential executor.
pub fn run_parallel<P, F>(
    graph: &Graph,
    budget: MessageBudget,
    seed: u64,
    factory: F,
    max_rounds: u32,
    threads: usize,
) -> Result<ParallelOutcome<P>, RunError>
where
    P: Protocol + Send,
    P::Msg: Send,
    F: Fn(NodeId, &mut SmallRng) -> P + Sync,
{
    let mut net = ParallelNetwork::new(graph, budget, seed, threads);
    let states = net.run(factory, max_rounds)?;
    Ok(ParallelOutcome {
        states,
        metrics: net.metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::MinIdBroadcast;
    use crate::sync::Network;
    use spanner_graph::generators;

    #[test]
    fn parallel_matches_sequential() {
        let g = generators::erdos_renyi_gnm(80, 240, 7);
        let sources = |v: NodeId| v.0.is_multiple_of(13);
        let mut net = Network::new(&g, MessageBudget::Words(2), 99);
        let seq = net
            .run(|v, _| MinIdBroadcast::new(sources(v), 40), 256)
            .unwrap();
        for threads in [1, 2, 4] {
            let par = run_parallel(
                &g,
                MessageBudget::Words(2),
                99,
                |v, _| MinIdBroadcast::new(sources(v), 40),
                256,
                threads,
            )
            .unwrap();
            for v in g.nodes() {
                assert_eq!(
                    seq[v.index()].nearest(),
                    par.states[v.index()].nearest(),
                    "node {v} with {threads} threads"
                );
            }
            assert_eq!(par.metrics.rounds, net.metrics().rounds);
            assert_eq!(par.metrics.messages, net.metrics().messages);
            assert_eq!(par.metrics.words, net.metrics().words);
        }
    }

    #[test]
    fn parallel_round_limit() {
        #[derive(Debug)]
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.broadcast(1);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {
                ctx.broadcast(1);
            }
        }
        let g = generators::cycle(6);
        let err = run_parallel(&g, MessageBudget::CONGEST, 1, |_, _| Chatter, 3, 2).unwrap_err();
        assert_eq!(err, RunError::RoundLimit { max_rounds: 3 });
    }

    #[test]
    fn parallel_empty_graph() {
        struct Quiet;
        impl Protocol for Quiet {
            type Msg = u64;
            fn init(&mut self, _: &mut Ctx<'_, u64>) {}
            fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
        }
        let g = spanner_graph::Graph::empty(0);
        let out = run_parallel(&g, MessageBudget::CONGEST, 1, |_, _| Quiet, 4, 3).unwrap();
        assert!(out.states.is_empty());
        assert_eq!(out.metrics.messages, 0);
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = generators::path(3);
        let out = run_parallel(
            &g,
            MessageBudget::Words(2),
            5,
            |v, _| MinIdBroadcast::new(v == NodeId(0), 10),
            32,
            16,
        )
        .unwrap();
        assert!(out.states.iter().all(|s| s.nearest().is_some()));
    }

    /// A failed parallel run must leave the same partial metrics behind as
    /// the sequential executor (the seed version dropped them entirely).
    #[test]
    fn metrics_retained_on_budget_violation() {
        #[derive(Debug)]
        struct FatSecond;
        impl Protocol for FatSecond {
            type Msg = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
                ctx.broadcast(vec![1]);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
                if ctx.round() == 1 && ctx.me() == NodeId(2) {
                    ctx.broadcast(vec![0; 9]); // over budget
                }
            }
        }
        let g = generators::cycle(6);
        let mut seq = Network::new(&g, MessageBudget::Words(4), 3);
        let seq_err = seq.run(|_, _| FatSecond, 16).unwrap_err();
        let mut par = ParallelNetwork::new(&g, MessageBudget::Words(4), 3, 3);
        let par_err = par.run(|_, _| FatSecond, 16).unwrap_err();
        assert_eq!(seq_err, par_err);
        assert_eq!(seq.metrics(), par.metrics());
        assert!(seq.metrics().messages > 0); // genuinely partial, not empty
    }
}
