//! Invariants linking [`RunMetrics`] to the trace stream: the per-phase
//! buckets of a [`TraceSummary`] and the message-size histogram must
//! reproduce the aggregate counters exactly — on successful runs, failed
//! runs, and degenerate zero-round runs.

use proptest::prelude::*;

use spanner_graph::{generators, NodeId};
use spanner_netsim::{size_bucket, Ctx, MessageBudget, Network, Protocol, RunError, TraceSummary};

/// Speaks once in init with a size keyed to the node id, then stays silent:
/// the run quiesces after one round, exercising several histogram buckets.
#[derive(Debug)]
struct SizedHello;

impl Protocol for SizedHello {
    type Msg = Vec<u64>;

    fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
        ctx.enter_phase("hello");
        let words = 1 + (ctx.me().0 as usize % 9);
        ctx.broadcast(vec![0; words]);
    }

    fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {}
}

/// A node that never sends: the network is quiescent immediately and the
/// run finishes with zero rounds.
#[derive(Debug)]
struct Mute;

impl Protocol for Mute {
    type Msg = u64;
    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.enter_phase("silence");
    }
    fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {}
}

#[test]
fn zero_round_run_agrees() {
    let g = generators::cycle(12);
    let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
    let mut summary = TraceSummary::new();
    net.run_traced(|_, _| Mute, 8, &mut summary).unwrap();
    let m = net.metrics();
    assert_eq!(m.rounds, 0);
    assert_eq!(m.messages, 0);
    assert!(m.agrees_with(&summary));
    assert!(summary.is_complete());
    assert!(summary.error().is_none());
    // The declared phase span exists even though no round was counted.
    let phases: Vec<&str> = summary.phases().iter().map(|p| p.name.as_str()).collect();
    assert_eq!(phases, ["silence"]);
    assert_eq!(summary.phases()[0].rounds, 0);
}

#[test]
fn zero_node_run_agrees() {
    let g = spanner_graph::Graph::from_edges(0, std::iter::empty::<(u32, u32)>());
    let mut net = Network::new(&g, MessageBudget::CONGEST, 1);
    let mut summary = TraceSummary::new();
    net.run_traced(|_, _| Mute, 8, &mut summary).unwrap();
    assert!(net.metrics().agrees_with(&summary));
    assert_eq!(summary.total_rounds(), 0);
    assert!(summary.phases().is_empty());
}

#[test]
fn size_histogram_buckets_match_manual_count() {
    let g = generators::connected_gnm(60, 180, 4);
    let mut net = Network::new(&g, MessageBudget::Unbounded, 2);
    let mut summary = TraceSummary::new();
    net.run_traced(|_, _| SizedHello, 8, &mut summary).unwrap();
    let m = net.metrics();
    assert!(m.agrees_with(&summary));
    // Recompute the histogram from first principles: each node broadcasts
    // deg(v) messages of 1 + (v mod 9) words.
    let mut expect = vec![0u64; summary.size_histogram().len()];
    for v in g.nodes() {
        let words = 1 + (v.0 as usize % 9);
        expect[size_bucket(words)] += g.neighbors(v).len() as u64;
    }
    assert_eq!(summary.size_histogram(), &expect[..]);
}

/// A budget violation mid-phase: the interrupted span is closed and
/// retained by the summary, and the partial totals still reconcile.
#[test]
fn budget_violation_mid_phase_agrees() {
    #[derive(Debug)]
    struct FatLater;
    impl Protocol for FatLater {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![1]);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
            if ctx.tracing() {
                ctx.enter_phase(if ctx.round() < 3 { "thin" } else { "fat" });
            }
            let words = if ctx.round() >= 3 { 6 } else { 1 };
            if ctx.round() < 5 {
                ctx.broadcast(vec![0; words]);
            }
        }
    }
    let g = generators::cycle(10);
    let mut net = Network::new(&g, MessageBudget::Words(4), 3);
    let mut summary = TraceSummary::new();
    let err = net
        .run_traced(|_, _| FatLater, 32, &mut summary)
        .unwrap_err();
    assert!(matches!(err, RunError::Budget(_)));
    let m = net.metrics();
    assert!(
        m.rounds > 0 && m.messages > 0,
        "partial accounting expected"
    );
    assert!(m.agrees_with(&summary), "metrics {m:?} vs summary totals");
    assert!(summary.error().is_some());
    assert!(!summary.is_complete() || summary.error().is_some());
    // The interrupted `fat` span is present and closed with the partial
    // round attributed to it.
    let fat = summary
        .phases()
        .iter()
        .find(|p| p.name == "fat")
        .expect("interrupted span retained");
    assert_eq!(fat.rounds, 1);
    assert_eq!(fat.first_round, 3);
    assert_eq!(fat.last_round, 3);
}

/// Randomized gossip with per-node message sizes: whatever the topology,
/// seed, and lifetime, the trace totals must equal the aggregate counters
/// and the histogram must sum to the message count.
#[derive(Debug)]
struct NoisyGossip {
    ttl: u32,
}

impl Protocol for NoisyGossip {
    type Msg = Vec<u64>;

    fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
        ctx.enter_phase("go");
        let words = 1 + (ctx.me().0 as usize % 5);
        ctx.broadcast(vec![0; words]);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, inbox: &[(NodeId, Vec<u64>)]) {
        if ctx.round() < self.ttl && !inbox.is_empty() {
            let words = 1 + ((ctx.me().0 + ctx.round()) as usize % 7);
            ctx.broadcast(vec![0; words]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn histogram_totals_match_aggregates(
        n in 1usize..=80,
        density in 1.0f64..3.0,
        seed in any::<u64>(),
        ttl in 0u32..5,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0xA11CE);
        let mut net = Network::new(&g, MessageBudget::Unbounded, seed);
        let mut summary = TraceSummary::new();
        net.run_traced(|_, _| NoisyGossip { ttl }, 4 * ttl + 16, &mut summary)
            .unwrap();
        let metrics = net.metrics();
        prop_assert!(metrics.agrees_with(&summary));
        prop_assert_eq!(
            summary.size_histogram().iter().sum::<u64>(),
            metrics.messages
        );
        // Per-phase round totals partition the counted rounds.
        let phase_rounds: u32 = summary.phases().iter().map(|p| p.rounds).sum::<u32>()
            + summary.untracked().map_or(0, |p| p.rounds);
        prop_assert_eq!(phase_rounds, metrics.rounds);
    }
}
