//! Conformance suite for the fault-injection layer: both executors must
//! honor a [`FaultPlan`] identically (states, metrics, trace bytes, at any
//! thread count), the empty plan must be observationally invisible, and
//! every fault class must have exactly the semantics documented in
//! `faults.rs` — including on the error paths.

use proptest::prelude::*;

use rand::Rng;
use spanner_graph::{generators, Graph, NodeId};
use spanner_netsim::rng::splitmix64;
use spanner_netsim::{
    Ctx, FaultPlan, JsonLinesSink, MessageBudget, Network, ParallelNetwork, Protocol,
    RingBufferSink, RunError,
};

const TRACE_CAP: usize = 1 << 20;

/// Same digest-everything protocol the parity suite uses: any divergence in
/// RNG streams, inbox order, or delivery timing changes the final states.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GossipHash {
    digest: u64,
    rounds_run: u32,
    ttl: u32,
}

impl GossipHash {
    fn new(ttl: u32) -> Self {
        GossipHash {
            digest: 0,
            rounds_run: 0,
            ttl,
        }
    }

    fn mix(&mut self, sender: NodeId, word: u64) {
        let mut z = self
            .digest
            .wrapping_mul(0x100000001B3)
            .wrapping_add(((sender.0 as u64) << 32) ^ word);
        z ^= z >> 29;
        self.digest = z;
    }
}

impl Protocol for GossipHash {
    type Msg = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.rounds_run += 1;
        let word = ctx.rng().gen::<u64>();
        self.mix(ctx.me(), word);
        ctx.broadcast(word & 0xFFFF);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
        self.rounds_run += 1;
        for &(s, w) in inbox {
            self.mix(s, w);
        }
        if ctx.round() < self.ttl && !inbox.is_empty() {
            let word = ctx.rng().gen::<u64>();
            self.mix(ctx.me(), word);
            ctx.broadcast(word & 0xFFFF);
        }
    }
}

type RunOutcome = Result<Vec<GossipHash>, RunError>;

fn run_seq(
    g: &Graph,
    seed: u64,
    ttl: u32,
    max_rounds: u32,
    plan: Option<&FaultPlan>,
) -> RunOutcome {
    let mut net = Network::new(g, MessageBudget::CONGEST, seed);
    if let Some(p) = plan {
        net = net.with_faults(p.clone());
    }
    net.run(|_, _| GossipHash::new(ttl), max_rounds)
}

/// Runs the schedule on both executors (threads 1–8) and asserts the
/// outcome, metrics, and serialized trace stream are byte-identical.
fn assert_fault_parity(g: &Graph, seed: u64, ttl: u32, plan: &FaultPlan) {
    let max_rounds = 4 * ttl + 32;
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed).with_faults(plan.clone());
    let mut seq_sink = JsonLinesSink::new(Vec::<u8>::new());
    let seq_result = seq.run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut seq_sink);
    let seq_bytes = seq_sink.finish().unwrap();
    let seq_metrics = seq.metrics();
    for threads in [1usize, 2, 3, 8] {
        let mut par = ParallelNetwork::new(g, MessageBudget::CONGEST, seed, threads)
            .with_faults(plan.clone());
        let mut par_sink = JsonLinesSink::new(Vec::<u8>::new());
        let par_result = par.run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut par_sink);
        assert_eq!(seq_result, par_result, "outcome, {threads} threads");
        assert_eq!(seq_metrics, par.metrics(), "metrics, {threads} threads");
        assert_eq!(
            seq_bytes,
            par_sink.finish().unwrap(),
            "trace bytes, {threads} threads"
        );
    }
}

/// A fault schedule derived deterministically from one seed, covering a
/// random mix of every fault class (possibly none).
fn random_plan(fseed: u64, n: usize) -> FaultPlan {
    let mut s = fseed;
    let mut plan = FaultPlan::new(splitmix64(&mut s));
    let classes = splitmix64(&mut s);
    if classes & 1 != 0 {
        plan = plan.with_drops(0.01 + (splitmix64(&mut s) % 20) as f64 * 0.01);
    }
    if classes & 2 != 0 {
        plan = plan.with_duplicates(0.01 + (splitmix64(&mut s) % 20) as f64 * 0.01);
    }
    if classes & 4 != 0 {
        let d = 1 + (splitmix64(&mut s) % 3) as u32;
        plan = plan.with_delays(0.01 + (splitmix64(&mut s) % 20) as f64 * 0.01, d);
    }
    if classes & 8 != 0 {
        plan = plan.with_stutters(0.01 + (splitmix64(&mut s) % 15) as f64 * 0.01);
    }
    for _ in 0..splitmix64(&mut s) % 3 {
        let v = NodeId((splitmix64(&mut s) % n as u64) as u32);
        let r = (splitmix64(&mut s) % 6) as u32;
        plan = plan.with_crash(v, r);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole invariant: any generated schedule yields byte-identical
    // behavior on every executor and thread count, on `Ok` and `Err` paths
    // alike.
    #[test]
    fn random_schedules_run_identically_everywhere(
        n in 2usize..=72,
        density in 1.0f64..3.0,
        seed in any::<u64>(),
        fseed in any::<u64>(),
        ttl in 1u32..6,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0xFA17);
        assert_fault_parity(&g, seed, ttl, &random_plan(fseed, n));
    }
}

/// An inactive (freshly constructed) plan must leave the faulted code path
/// observationally identical to the pre-fault one: same states, same
/// metrics, and the exact same serialized trace bytes.
#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let g = generators::erdos_renyi_gnm(60, 180, 21);
    let empty = FaultPlan::new(99);
    assert!(!empty.is_active());

    let run = |plan: Option<FaultPlan>| {
        let mut net = Network::new(&g, MessageBudget::CONGEST, 5);
        if let Some(p) = plan {
            net = net.with_faults(p);
        }
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let states = net
            .run_traced(|_, _| GossipHash::new(4), 64, &mut sink)
            .unwrap();
        (states, net.metrics(), sink.finish().unwrap())
    };

    let (base_states, base_metrics, base_bytes) = run(None);
    let (states, metrics, bytes) = run(Some(empty.clone()));
    assert_eq!(base_states, states);
    assert_eq!(base_metrics, metrics);
    assert_eq!(base_bytes, bytes, "trace streams must not differ");
    assert!(metrics.faults.is_empty());

    let mut par = ParallelNetwork::new(&g, MessageBudget::CONGEST, 5, 4).with_faults(empty);
    let mut sink = JsonLinesSink::new(Vec::<u8>::new());
    let par_states = par
        .run_traced(|_, _| GossipHash::new(4), 64, &mut sink)
        .unwrap();
    assert_eq!(base_states, par_states);
    assert_eq!(base_metrics, par.metrics());
    assert_eq!(base_bytes, sink.finish().unwrap());
}

/// Crash-stop semantics: the node executes nothing from its crash round on,
/// the crash is counted once, and messages to it become dead letters — but
/// the run still terminates cleanly.
#[test]
fn crashed_nodes_fall_silent_and_are_counted() {
    let g = generators::star(16);
    // The hub crashes right after init: every spoke's round-1 reply to it
    // is a dead letter, and the gossip dies out.
    let plan = FaultPlan::new(3).with_crash(NodeId(0), 1);
    let states = run_seq(&g, 8, 5, 64, Some(&plan)).unwrap();
    let baseline = run_seq(&g, 8, 5, 64, None).unwrap();
    assert_eq!(states[0].rounds_run, 1, "hub ran init only");
    assert!(baseline[0].rounds_run > 1, "unfaulted hub keeps running");

    let mut net = Network::new(&g, MessageBudget::CONGEST, 8).with_faults(plan);
    net.run(|_, _| GossipHash::new(5), 64).unwrap();
    let fc = net.metrics().faults;
    assert_eq!(fc.crashes, 1);
    // The spokes' init-round replies arrive in round 1 — the crash round —
    // and their round-1 replies in round 2: all 30 are dead on arrival.
    assert_eq!(fc.dead_letters, 30, "every spoke wrote to the dead hub");
    assert_eq!(fc.dropped + fc.duplicated + fc.delayed + fc.stutters, 0);
}

/// A node crashed at round 0 never runs `init` and sends nothing at all.
#[test]
fn crash_at_round_zero_suppresses_init() {
    let g = generators::cycle(8);
    let plan = FaultPlan::new(1).with_crash(NodeId(3), 0);
    let states = run_seq(&g, 2, 4, 64, Some(&plan)).unwrap();
    assert_eq!(states[3], GossipHash::new(4), "factory-fresh state");
    assert_eq!(states[3].rounds_run, 0);
}

/// Dropping every message is still a clean, fully accounted run: the
/// messages are budget-charged and counted in `RunMetrics`, and the drop
/// counter equals the message counter.
#[test]
fn total_drop_charges_budget_but_delivers_nothing() {
    let g = generators::erdos_renyi_gnm(30, 90, 4);
    let plan = FaultPlan::new(6).with_drops(1.0);
    let mut net = Network::new(&g, MessageBudget::CONGEST, 9).with_faults(plan);
    let states = net.run(|_, _| GossipHash::new(6), 64).unwrap();
    let m = net.metrics();
    assert!(m.messages > 0, "sends are still accounted");
    assert_eq!(m.faults.dropped, m.messages, "every message dropped");
    // Nothing is ever in flight, so the run quiesces right after init.
    assert!(states.iter().all(|s| s.rounds_run == 1));
}

/// Scoped faults are metamorphic: hammering one connected component must
/// leave the states of the other component bit-identical to an unfaulted
/// run — fault streams never perturb protocol RNG streams.
#[test]
fn scoped_faults_leave_other_component_untouched() {
    // Two disjoint 12-cliques in one graph: nodes 0..12 and 12..24.
    let k = 12u32;
    let mut edges = Vec::new();
    for base in [0, k] {
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((base + a, base + b));
            }
        }
    }
    let g = Graph::from_edges(2 * k as usize, edges.iter().copied());
    let hostile = FaultPlan::new(12)
        .with_drops(0.4)
        .with_duplicates(0.3)
        .with_delays(0.3, 3)
        .with_stutters(0.3)
        .with_crash(NodeId(k + 2), 2)
        .scoped_to((k..2 * k).map(NodeId));

    let baseline = run_seq(&g, 77, 5, 256, None).unwrap();
    let faulted = run_seq(&g, 77, 5, 256, Some(&hostile)).unwrap();
    for v in 0..k as usize {
        assert_eq!(baseline[v].digest, faulted[v].digest, "node {v} perturbed");
    }
    // And the faults really did fire in the other component.
    let mut net = Network::new(&g, MessageBudget::CONGEST, 77).with_faults(hostile);
    net.run(|_, _| GossipHash::new(5), 256).unwrap();
    let fc = net.metrics().faults;
    assert!(
        fc.dropped > 0 && fc.crashes == 1,
        "hostile plan was inert: {fc}"
    );
}

/// Error paths stay typed and fully accounted under faults: a run that
/// cannot quiesce (a permanent stutterer holding carry) ends in
/// `RunError::RoundLimit` with identical partial metrics on both executors.
#[test]
fn round_limit_under_faults_is_typed_and_parity_holds() {
    let g = generators::cycle(6);
    // Node 2 stutters every round: its neighbors' messages are held
    // forever, so the run can never quiesce.
    let plan = FaultPlan::new(4).with_stutters(1.0).scoped_to([NodeId(2)]);
    let mut seq = Network::new(&g, MessageBudget::CONGEST, 3).with_faults(plan.clone());
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_err = seq
        .run_traced(|_, _| GossipHash::new(2), 12, &mut seq_trace)
        .unwrap_err();
    assert_eq!(seq_err, RunError::RoundLimit { max_rounds: 12 });
    assert!(seq.metrics().faults.stutters > 0);
    let seq_events = seq_trace.into_events();
    for threads in [1usize, 4] {
        let mut par =
            ParallelNetwork::new(&g, MessageBudget::CONGEST, 3, threads).with_faults(plan.clone());
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_err = par
            .run_traced(|_, _| GossipHash::new(2), 12, &mut par_trace)
            .unwrap_err();
        assert_eq!(seq_err, par_err);
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
        assert_eq!(seq_events, par_trace.into_events(), "{threads} threads");
    }
}

/// Budget violations under an active plan retain the partial fault
/// counters, identically on both executors.
#[test]
fn budget_violation_under_faults_keeps_partial_fault_metrics() {
    #[derive(Debug, PartialEq)]
    struct LateFat;
    impl Protocol for LateFat {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![1]);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
            if ctx.round() == 2 {
                ctx.broadcast(vec![0; 9]);
            } else if ctx.round() < 2 {
                ctx.broadcast(vec![ctx.round() as u64]);
            }
        }
    }
    let g = generators::erdos_renyi_gnm(24, 60, 2);
    let plan = FaultPlan::new(5).with_drops(0.3).with_stutters(0.2);
    let mut seq = Network::new(&g, MessageBudget::Words(4), 11).with_faults(plan.clone());
    let seq_err = seq.run(|_, _| LateFat, 32).unwrap_err();
    assert!(matches!(seq_err, RunError::Budget(_)));
    assert!(
        !seq.metrics().faults.is_empty(),
        "faults fired before the violation"
    );
    for threads in [1usize, 3, 8] {
        let mut par = ParallelNetwork::new(&g, MessageBudget::Words(4), 11, threads)
            .with_faults(plan.clone());
        let par_err = par.run(|_, _| LateFat, 32).unwrap_err();
        assert_eq!(seq_err, par_err, "{threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
    }
}

/// The trace stream of a faulted run records the per-category counters and
/// round-trips through the JSONL parser.
#[test]
fn faulted_trace_stream_reports_counters() {
    use spanner_netsim::{TraceEvent, TraceSummary};
    let g = generators::erdos_renyi_gnm(40, 120, 8);
    let plan = FaultPlan::new(2).with_drops(0.2).with_delays(0.2, 2);
    let mut net = Network::new(&g, MessageBudget::CONGEST, 6).with_faults(plan);
    let mut sink = JsonLinesSink::new(Vec::<u8>::new());
    net.run_traced(|_, _| GossipHash::new(5), 128, &mut sink)
        .unwrap();
    let bytes = sink.finish().unwrap();
    let mut summary = TraceSummary::default();
    let mut saw_faults = false;
    for line in std::str::from_utf8(&bytes).unwrap().lines() {
        let ev = TraceEvent::from_json_line(line).expect("parseable");
        assert_eq!(ev.to_json_line(), line, "round-trip");
        saw_faults |= matches!(ev, TraceEvent::Faults { .. });
        summary.observe(&ev);
    }
    assert!(saw_faults, "faulted run must emit a faults record");
    assert_eq!(
        summary.fault_counters().copied().unwrap_or_default(),
        net.metrics().faults
    );
    assert!(net.metrics().agrees_with(&summary));
}
