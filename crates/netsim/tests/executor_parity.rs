//! Cross-executor parity: the sequential and parallel executors must be
//! observationally identical — same final states, same RNG streams, same
//! [`RunMetrics`] — on every graph, seed, and thread count, including the
//! partial metrics left behind by failed runs.

use proptest::prelude::*;

use rand::Rng;
use spanner_graph::{generators, Graph, NodeId};
use spanner_netsim::patterns::MinIdBroadcast;
use spanner_netsim::{Ctx, MessageBudget, Network, ParallelNetwork, Protocol, RunError};

/// A protocol exercising every determinism-relevant feature at once: each
/// round a node flips its private coin, gossips the value to all neighbors,
/// and folds everything it hears into a running hash. Any divergence in RNG
/// streams, inbox order, or delivery timing changes the digests.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GossipHash {
    digest: u64,
    ttl: u32,
}

impl GossipHash {
    fn new(ttl: u32) -> Self {
        GossipHash { digest: 0, ttl }
    }

    fn mix(&mut self, sender: NodeId, word: u64) {
        let mut z = self
            .digest
            .wrapping_mul(0x100000001B3)
            .wrapping_add(((sender.0 as u64) << 32) ^ word);
        z ^= z >> 29;
        self.digest = z;
    }
}

impl Protocol for GossipHash {
    type Msg = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        let word = ctx.rng().gen::<u64>();
        self.mix(ctx.me(), word);
        ctx.broadcast(word & 0xFFFF);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
        for &(s, w) in inbox {
            self.mix(s, w);
        }
        if ctx.round() < self.ttl && !inbox.is_empty() {
            let word = ctx.rng().gen::<u64>();
            self.mix(ctx.me(), word);
            ctx.broadcast(word & 0xFFFF);
        }
    }
}

fn assert_parity(g: &Graph, seed: u64, ttl: u32) {
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed);
    let seq_states = seq.run(|_, _| GossipHash::new(ttl), 4 * ttl + 16).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let mut par = ParallelNetwork::new(g, MessageBudget::CONGEST, seed, threads);
        let par_states = par.run(|_, _| GossipHash::new(ttl), 4 * ttl + 16).unwrap();
        assert_eq!(seq_states, par_states, "states, {threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "metrics, {threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn executors_agree_on_random_graphs(
        n in 2usize..=120,
        density in 1.0f64..3.5,
        seed in any::<u64>(),
        ttl in 1u32..6,
    ) {
        let m = ((n as f64) * density) as usize;
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0x5EED);
        assert_parity(&g, seed, ttl);
    }

    #[test]
    fn executors_agree_on_stars(
        leaves in 2usize..=400,
        seed in any::<u64>(),
    ) {
        // High-degree hub: the shape that punished the old O(outbox)
        // duplicate scan and exercises cross-chunk routing the hardest.
        let g = generators::star(leaves + 1);
        assert_parity(&g, seed, 3);
    }
}

#[test]
fn executors_agree_on_min_id_broadcast() {
    let g = generators::erdos_renyi_gnm(90, 270, 31);
    let sources = |v: NodeId| v.0.is_multiple_of(11);
    let mut seq = Network::new(&g, MessageBudget::Words(2), 12);
    let seq_states = seq
        .run(|v, _| MinIdBroadcast::new(sources(v), 50), 256)
        .unwrap();
    for threads in [1usize, 2, 4, 8] {
        let par = spanner_netsim::parallel::run_parallel(
            &g,
            MessageBudget::Words(2),
            12,
            |v, _| MinIdBroadcast::new(sources(v), 50),
            256,
            threads,
        )
        .unwrap();
        for v in g.nodes() {
            assert_eq!(
                seq_states[v.index()].nearest(),
                par.states[v.index()].nearest(),
                "node {v}, {threads} threads"
            );
        }
        assert_eq!(seq.metrics(), par.metrics, "{threads} threads");
    }
}

/// Error paths must account identically too: a round-limited run leaves the
/// same metrics in both executors.
#[test]
fn round_limit_metrics_agree() {
    #[derive(Debug)]
    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(1);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {
            ctx.broadcast(1);
        }
    }
    let g = generators::erdos_renyi_gnm(40, 120, 2);
    let mut seq = Network::new(&g, MessageBudget::CONGEST, 7);
    let seq_err = seq.run(|_, _| Chatter, 6).unwrap_err();
    assert_eq!(seq_err, RunError::RoundLimit { max_rounds: 6 });
    for threads in [1usize, 3, 8] {
        let mut par = ParallelNetwork::new(&g, MessageBudget::CONGEST, 7, threads);
        let par_err = par.run(|_, _| Chatter, 6).unwrap_err();
        assert_eq!(seq_err, par_err);
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
    }
}

/// Budget-violation runs leave identical partial metrics (the seed executor
/// lost the parallel metrics entirely on this path).
#[test]
fn budget_violation_metrics_agree() {
    #[derive(Debug)]
    struct LateFat;
    impl Protocol for LateFat {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![1]);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
            if ctx.round() == 2 && ctx.me().0 >= 20 {
                ctx.broadcast(vec![0; 7]);
            } else if ctx.round() < 2 {
                ctx.broadcast(vec![ctx.round() as u64]);
            }
        }
    }
    let g = generators::erdos_renyi_gnm(40, 100, 5);
    let mut seq = Network::new(&g, MessageBudget::Words(4), 9);
    let seq_err = seq.run(|_, _| LateFat, 32).unwrap_err();
    assert!(matches!(seq_err, RunError::Budget(_)));
    assert!(seq.metrics().messages > 0, "partial accounting expected");
    for threads in [1usize, 2, 4, 8] {
        let mut par = ParallelNetwork::new(&g, MessageBudget::Words(4), 9, threads);
        let par_err = par.run(|_, _| LateFat, 32).unwrap_err();
        assert_eq!(seq_err, par_err, "{threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
    }
}
