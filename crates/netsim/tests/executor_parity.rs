//! Cross-executor parity: the sequential and parallel executors must be
//! observationally identical — same final states, same RNG streams, same
//! [`RunMetrics`], same trace event stream — on every graph, seed, and
//! thread count, including the partial accounting left behind by failed
//! runs.

use proptest::prelude::*;

use rand::Rng;
use spanner_graph::{generators, Graph, NodeId};
use spanner_netsim::patterns::MinIdBroadcast;
use spanner_netsim::rng::splitmix64;
use spanner_netsim::{
    AsyncNetwork, Ctx, FaultPlan, JsonLinesSink, MessageBudget, Network, ParallelNetwork, Protocol,
    RingBufferSink, RunError, Synchronizer, TraceEvent,
};

/// Large enough that no test run ever evicts an event.
const TRACE_CAP: usize = 1 << 20;

/// A protocol exercising every determinism-relevant feature at once: each
/// round a node flips its private coin, gossips the value to all neighbors,
/// and folds everything it hears into a running hash. Any divergence in RNG
/// streams, inbox order, or delivery timing changes the digests.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GossipHash {
    digest: u64,
    ttl: u32,
}

impl GossipHash {
    fn new(ttl: u32) -> Self {
        GossipHash { digest: 0, ttl }
    }

    fn mix(&mut self, sender: NodeId, word: u64) {
        let mut z = self
            .digest
            .wrapping_mul(0x100000001B3)
            .wrapping_add(((sender.0 as u64) << 32) ^ word);
        z ^= z >> 29;
        self.digest = z;
    }
}

impl Protocol for GossipHash {
    type Msg = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.enter_phase("seed");
        let word = ctx.rng().gen::<u64>();
        self.mix(ctx.me(), word);
        ctx.broadcast(word & 0xFFFF);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
        // Two-round waves exercise the consecutive-declaration dedup: the
        // second round of each wave re-declares the same name.
        if ctx.tracing() {
            ctx.enter_phase(format!("wave[{}]", (ctx.round() - 1) / 2));
        }
        for &(s, w) in inbox {
            self.mix(s, w);
        }
        if ctx.round() < self.ttl && !inbox.is_empty() {
            let word = ctx.rng().gen::<u64>();
            self.mix(ctx.me(), word);
            ctx.broadcast(word & 0xFFFF);
        }
    }
}

fn assert_parity(g: &Graph, seed: u64, ttl: u32) {
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_states = seq
        .run_traced(|_, _| GossipHash::new(ttl), 4 * ttl + 16, &mut seq_trace)
        .unwrap();
    assert_eq!(seq_trace.dropped(), 0);
    let seq_events = seq_trace.into_events();
    for threads in [1usize, 2, 4, 8] {
        let mut par = ParallelNetwork::new(g, MessageBudget::CONGEST, seed, threads);
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_states = par
            .run_traced(|_, _| GossipHash::new(ttl), 4 * ttl + 16, &mut par_trace)
            .unwrap();
        assert_eq!(seq_states, par_states, "states, {threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "metrics, {threads} threads");
        assert_eq!(
            seq_events,
            par_trace.into_events(),
            "trace events, {threads} threads"
        );
    }
}

/// Like [`assert_parity`] but under a fault schedule, over the full thread
/// range, asserting parity of the outcome (`Ok` states or typed `Err`),
/// metrics, and trace stream alike.
fn assert_parity_under_faults(g: &Graph, seed: u64, ttl: u32, plan: &FaultPlan) {
    let max_rounds = 4 * ttl + 16;
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed).with_faults(plan.clone());
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_result = seq.run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut seq_trace);
    assert_eq!(seq_trace.dropped(), 0);
    let seq_events = seq_trace.into_events();
    for threads in 1usize..=8 {
        let mut par = ParallelNetwork::new(g, MessageBudget::CONGEST, seed, threads)
            .with_faults(plan.clone());
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_result = par.run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut par_trace);
        assert_eq!(seq_result, par_result, "outcome, {threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "metrics, {threads} threads");
        assert_eq!(
            seq_events,
            par_trace.into_events(),
            "trace events, {threads} threads"
        );
    }
}

/// A mixed drop/delay/crash schedule derived from one seed (the fault
/// classes the satellite task calls out; stutters and duplicates are
/// covered by `fault_conformance.rs`).
fn fault_schedule(fseed: u64, n: usize) -> FaultPlan {
    let mut s = fseed;
    let mut plan = FaultPlan::new(splitmix64(&mut s))
        .with_drops((splitmix64(&mut s) % 25) as f64 * 0.01)
        .with_delays(
            (splitmix64(&mut s) % 25) as f64 * 0.01,
            1 + (splitmix64(&mut s) % 3) as u32,
        );
    for _ in 0..splitmix64(&mut s) % 3 {
        let v = NodeId((splitmix64(&mut s) % n as u64) as u32);
        plan = plan.with_crash(v, (splitmix64(&mut s) % 5) as u32);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn executors_agree_on_random_graphs(
        n in 2usize..=120,
        density in 1.0f64..3.5,
        seed in any::<u64>(),
        ttl in 1u32..6,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0x5EED);
        assert_parity(&g, seed, ttl);
    }

    #[test]
    fn executors_agree_on_stars(
        leaves in 2usize..=400,
        seed in any::<u64>(),
    ) {
        // High-degree hub: the shape that punished the old O(outbox)
        // duplicate scan and exercises cross-chunk routing the hardest.
        let g = generators::star(leaves + 1);
        assert_parity(&g, seed, 3);
    }

    #[test]
    fn executors_agree_under_fault_schedules(
        n in 2usize..=64,
        density in 1.0f64..3.0,
        seed in any::<u64>(),
        fseed in any::<u64>(),
        ttl in 1u32..5,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0x0F17);
        assert_parity_under_faults(&g, seed, ttl, &fault_schedule(fseed, n));
    }

    #[test]
    fn executors_agree_under_faults_on_stars(
        leaves in 2usize..=160,
        seed in any::<u64>(),
        fseed in any::<u64>(),
    ) {
        let g = generators::star(leaves + 1);
        assert_parity_under_faults(&g, seed, 3, &fault_schedule(fseed, leaves + 1));
    }
}

#[test]
fn executors_agree_on_min_id_broadcast() {
    let g = generators::erdos_renyi_gnm(90, 270, 31);
    let sources = |v: NodeId| v.0.is_multiple_of(11);
    let mut seq = Network::new(&g, MessageBudget::Words(2), 12);
    let seq_states = seq
        .run(|v, _| MinIdBroadcast::new(sources(v), 50), 256)
        .unwrap();
    for threads in [1usize, 2, 4, 8] {
        let par = spanner_netsim::parallel::run_parallel(
            &g,
            MessageBudget::Words(2),
            12,
            |v, _| MinIdBroadcast::new(sources(v), 50),
            256,
            threads,
        )
        .unwrap();
        for v in g.nodes() {
            assert_eq!(
                seq_states[v.index()].nearest(),
                par.states[v.index()].nearest(),
                "node {v}, {threads} threads"
            );
        }
        assert_eq!(seq.metrics(), par.metrics, "{threads} threads");
    }
}

/// Error paths must account identically too: a round-limited run leaves the
/// same metrics and the same (truncated) trace stream in both executors.
#[test]
fn round_limit_metrics_agree() {
    #[derive(Debug)]
    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.enter_phase("chatter");
            ctx.broadcast(1);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, _: &[(NodeId, u64)]) {
            ctx.broadcast(1);
        }
    }
    let g = generators::erdos_renyi_gnm(40, 120, 2);
    let mut seq = Network::new(&g, MessageBudget::CONGEST, 7);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_err = seq
        .run_traced(|_, _| Chatter, 6, &mut seq_trace)
        .unwrap_err();
    assert_eq!(seq_err, RunError::RoundLimit { max_rounds: 6 });
    let seq_events = seq_trace.into_events();
    assert!(matches!(
        seq_events.last(),
        Some(TraceEvent::RunEnd { error: Some(_), .. })
    ));
    for threads in [1usize, 3, 8] {
        let mut par = ParallelNetwork::new(&g, MessageBudget::CONGEST, 7, threads);
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_err = par
            .run_traced(|_, _| Chatter, 6, &mut par_trace)
            .unwrap_err();
        assert_eq!(seq_err, par_err);
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
        assert_eq!(
            seq_events,
            par_trace.into_events(),
            "trace events, {threads} threads"
        );
    }
}

/// Budget-violation runs leave identical partial metrics (the seed executor
/// lost the parallel metrics entirely on this path) and identical partial
/// trace streams: the interrupted round is flushed, the open phase span is
/// closed, and the closing record carries the error.
#[test]
fn budget_violation_metrics_agree() {
    #[derive(Debug)]
    struct LateFat;
    impl Protocol for LateFat {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![1]);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
            if ctx.tracing() {
                ctx.enter_phase(format!("r{}", ctx.round()));
            }
            if ctx.round() == 2 && ctx.me().0 >= 20 {
                ctx.broadcast(vec![0; 7]);
            } else if ctx.round() < 2 {
                ctx.broadcast(vec![ctx.round() as u64]);
            }
        }
    }
    let g = generators::erdos_renyi_gnm(40, 100, 5);
    let mut seq = Network::new(&g, MessageBudget::Words(4), 9);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_err = seq
        .run_traced(|_, _| LateFat, 32, &mut seq_trace)
        .unwrap_err();
    assert!(matches!(seq_err, RunError::Budget(_)));
    assert!(seq.metrics().messages > 0, "partial accounting expected");
    let seq_events = seq_trace.into_events();
    // The stream ends with: the partial round, the forced close of the open
    // phase, and a RunEnd recording the violation.
    let tail: Vec<&TraceEvent> = seq_events.iter().rev().take(3).collect();
    assert!(matches!(tail[0], TraceEvent::RunEnd { error: Some(_), .. }));
    assert!(matches!(tail[1], TraceEvent::PhaseExit { .. }));
    assert!(matches!(tail[2], TraceEvent::Round { .. }));
    for threads in [1usize, 2, 4, 8] {
        let mut par = ParallelNetwork::new(&g, MessageBudget::Words(4), 9, threads);
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_err = par
            .run_traced(|_, _| LateFat, 32, &mut par_trace)
            .unwrap_err();
        assert_eq!(seq_err, par_err, "{threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
        assert_eq!(
            seq_events,
            par_trace.into_events(),
            "trace events, {threads} threads"
        );
    }
}

/// The serialized JSON-lines form must be byte-identical across executors,
/// not merely event-equal: downstream tools may diff the files directly.
#[test]
fn trace_jsonl_byte_identical() {
    let g = generators::erdos_renyi_gnm(80, 240, 17);
    let run_seq = || {
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let mut net = Network::new(&g, MessageBudget::CONGEST, 3);
        net.run_traced(|_, _| GossipHash::new(4), 64, &mut sink)
            .unwrap();
        sink.finish().unwrap()
    };
    let seq_bytes = run_seq();
    assert!(!seq_bytes.is_empty());
    // Every line round-trips through the parser.
    for line in std::str::from_utf8(&seq_bytes).unwrap().lines() {
        let ev = TraceEvent::from_json_line(line).expect("parseable line");
        assert_eq!(ev.to_json_line(), line);
    }
    for threads in [1usize, 2, 4, 8] {
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let mut par = ParallelNetwork::new(&g, MessageBudget::CONGEST, 3, threads);
        par.run_traced(|_, _| GossipHash::new(4), 64, &mut sink)
            .unwrap();
        let par_bytes = sink.finish().unwrap();
        assert_eq!(seq_bytes, par_bytes, "{threads} threads");
    }
}

/// The event-driven executor with a zero-delay plan (the default: every
/// link takes exactly one tick) must be byte-identical to the sequential
/// executor at the protocol level — same states, same metrics under the
/// [`protocol_only`](spanner_netsim::RunMetrics::protocol_only)
/// projection, same trace stream — and its async counters must satisfy the
/// one-event-per-arrival invariant.
fn assert_async_parity(g: &Graph, seed: u64, ttl: u32) {
    let max_rounds = 4 * ttl + 16;
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_states = seq
        .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut seq_trace)
        .unwrap();
    let seq_events = seq_trace.into_events();
    let mut anet = AsyncNetwork::new(g, MessageBudget::CONGEST, seed);
    let mut atrace = RingBufferSink::new(TRACE_CAP);
    let astates = anet
        .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut atrace)
        .unwrap();
    assert_eq!(seq_states, astates, "async states");
    assert_eq!(
        seq.metrics(),
        anet.metrics().protocol_only(),
        "async metrics"
    );
    assert_eq!(seq_events, atrace.into_events(), "async trace events");
    let m = anet.metrics();
    assert_eq!(m.events, m.messages + m.sync_messages, "event accounting");
    assert!(
        m.sim_time >= m.rounds as u64,
        "clock at least one tick/round"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn async_executor_agrees_on_random_graphs(
        n in 2usize..=96,
        density in 1.0f64..3.0,
        seed in any::<u64>(),
        ttl in 1u32..5,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0xA5_15C);
        assert_async_parity(&g, seed, ttl);
    }

    // Under *nonzero* random delays the trace stream stays identical too
    // (the synchronizer recovers exact rounds), for both synchronizer
    // variants; the skeleton variant synchronizes over a spanning tree of
    // the (connected) graph. (The shim's proptest! macro rejects doc
    // comments, hence the plain ones.)
    #[test]
    fn async_executor_agrees_under_random_delays(
        n in 2usize..=64,
        density in 1.2f64..3.0,
        seed in any::<u64>(),
        dseed in any::<u64>(),
        ttl in 1u32..5,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::connected_gnm(n, m, seed ^ 0xDE1A);
        assert_async_delay_parity(&g, seed, dseed, ttl);
    }
}

/// The body of `async_executor_agrees_under_random_delays`: sequential
/// reference once, then both synchronizers under the same delay plan.
fn assert_async_delay_parity(g: &Graph, seed: u64, dseed: u64, ttl: u32) {
    let max_rounds = 4 * ttl + 16;
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_states = seq
        .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut seq_trace)
        .unwrap();
    let seq_events = seq_trace.into_events();
    let delays = FaultPlan::new(dseed).with_delays(0.4, 4);
    let tree = spanning_tree(g);
    for sync in [Synchronizer::Alpha, Synchronizer::Skeleton(tree)] {
        let mut anet = AsyncNetwork::new(g, MessageBudget::CONGEST, seed)
            .with_delays(delays.clone())
            .with_synchronizer(sync.clone());
        let mut atrace = RingBufferSink::new(TRACE_CAP);
        let astates = anet
            .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut atrace)
            .unwrap();
        assert_eq!(seq_states, astates, "{sync:?} states");
        assert_eq!(
            seq.metrics(),
            anet.metrics().protocol_only(),
            "{sync:?} metrics"
        );
        assert_eq!(seq_events, atrace.into_events(), "{sync:?} trace");
        let m = anet.metrics();
        assert_eq!(m.events, m.messages + m.sync_messages, "{sync:?} events");
    }
}

/// A BFS spanning tree of a connected graph, as synchronizer edges.
fn spanning_tree(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let adj = spanner_netsim::CsrAdjacency::from_graph(g);
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([NodeId(0)]);
    seen[0] = true;
    let mut edges = Vec::new();
    while let Some(v) = queue.pop_front() {
        for &w in adj.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                edges.push((v, w));
                queue.push_back(w);
            }
        }
    }
    edges
}

/// Budget violations on the async executor leave the sequential executor's
/// exact partial accounting and partial trace stream, whatever the delay
/// plan — mid-round aborts happen at the same (sender, round) point.
#[test]
fn async_budget_violation_agrees() {
    #[derive(Debug)]
    struct LateFat;
    impl Protocol for LateFat {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![1]);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
            if ctx.tracing() {
                ctx.enter_phase(format!("r{}", ctx.round()));
            }
            if ctx.round() == 2 && ctx.me().0 >= 20 {
                ctx.broadcast(vec![0; 7]);
            } else if ctx.round() < 2 {
                ctx.broadcast(vec![ctx.round() as u64]);
            }
        }
    }
    let g = generators::connected_gnm(40, 100, 5);
    let mut seq = Network::new(&g, MessageBudget::Words(4), 9);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_err = seq
        .run_traced(|_, _| LateFat, 32, &mut seq_trace)
        .unwrap_err();
    assert!(matches!(seq_err, RunError::Budget(_)));
    let seq_events = seq_trace.into_events();
    for delays in [FaultPlan::default(), FaultPlan::new(3).with_delays(0.5, 4)] {
        let mut anet = AsyncNetwork::new(&g, MessageBudget::Words(4), 9).with_delays(delays);
        let mut atrace = RingBufferSink::new(TRACE_CAP);
        let aerr = anet
            .run_traced(|_, _| LateFat, 32, &mut atrace)
            .unwrap_err();
        assert_eq!(seq_err, aerr);
        assert_eq!(seq.metrics(), anet.metrics().protocol_only());
        assert_eq!(seq_events, atrace.into_events());
    }
}

/// Serialized async trace streams are byte-identical to the sequential
/// executor's (and hence to every parallel thread count, by
/// `trace_jsonl_byte_identical`); with delivery tracing enabled the stream
/// gains `deliver` records and nothing else changes.
#[test]
fn async_trace_jsonl_byte_identical() {
    let g = generators::connected_gnm(60, 180, 17);
    let mut sink = JsonLinesSink::new(Vec::<u8>::new());
    let mut net = Network::new(&g, MessageBudget::CONGEST, 3);
    net.run_traced(|_, _| GossipHash::new(4), 64, &mut sink)
        .unwrap();
    let seq_bytes = sink.finish().unwrap();
    let run_async = |trace_deliveries: bool| {
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let mut anet = AsyncNetwork::new(&g, MessageBudget::CONGEST, 3)
            .with_delays(FaultPlan::new(6).with_delays(0.3, 3))
            .with_delivery_trace(trace_deliveries);
        anet.run_traced(|_, _| GossipHash::new(4), 64, &mut sink)
            .unwrap();
        sink.finish().unwrap()
    };
    assert_eq!(seq_bytes, run_async(false));
    let with_deliveries = run_async(true);
    assert_ne!(seq_bytes, with_deliveries);
    let mut deliver_lines = 0usize;
    let filtered: Vec<&str> = std::str::from_utf8(&with_deliveries)
        .unwrap()
        .lines()
        .filter(|l| {
            let ev = TraceEvent::from_json_line(l).expect("parseable line");
            assert_eq!(ev.to_json_line(), *l, "deliver round-trips");
            if matches!(ev, TraceEvent::Deliver { .. }) {
                deliver_lines += 1;
                false
            } else {
                true
            }
        })
        .collect();
    assert!(deliver_lines > 0, "delivery tracing emits deliver records");
    let seq_lines: Vec<&str> = std::str::from_utf8(&seq_bytes).unwrap().lines().collect();
    assert_eq!(seq_lines, filtered, "deliver records are purely additive");
}

/// A CSR-built network must be observationally identical to the
/// Graph-built network on the same topology: same states (hence same RNG
/// streams — GossipHash folds every coin flip into its digest), same
/// metrics, same trace stream — sequential, parallel at 1–8 threads, and
/// async alike.
fn assert_csr_parity(g: &Graph, seed: u64, ttl: u32) {
    let max_rounds = 4 * ttl + 16;
    let csr = std::sync::Arc::new(spanner_netsim::CsrAdjacency::from_graph(g));
    let mut seq = Network::new(g, MessageBudget::CONGEST, seed);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_states = seq
        .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut seq_trace)
        .unwrap();
    let seq_events = seq_trace.into_events();

    let mut cseq = Network::from_csr(std::sync::Arc::clone(&csr), MessageBudget::CONGEST, seed);
    let mut ctrace = RingBufferSink::new(TRACE_CAP);
    let cstates = cseq
        .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut ctrace)
        .unwrap();
    assert_eq!(seq_states, cstates, "csr sequential states");
    assert_eq!(seq.metrics(), cseq.metrics(), "csr sequential metrics");
    assert_eq!(seq_events, ctrace.into_events(), "csr sequential trace");

    for threads in 1usize..=8 {
        let mut par = ParallelNetwork::from_csr(
            std::sync::Arc::clone(&csr),
            MessageBudget::CONGEST,
            seed,
            threads,
        );
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_states = par
            .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut par_trace)
            .unwrap();
        assert_eq!(seq_states, par_states, "csr states, {threads} threads");
        assert_eq!(
            seq.metrics(),
            par.metrics(),
            "csr metrics, {threads} threads"
        );
        assert_eq!(
            seq_events,
            par_trace.into_events(),
            "csr trace, {threads} threads"
        );
    }

    let mut anet =
        AsyncNetwork::from_csr(std::sync::Arc::clone(&csr), MessageBudget::CONGEST, seed);
    let mut atrace = RingBufferSink::new(TRACE_CAP);
    let astates = anet
        .run_traced(|_, _| GossipHash::new(ttl), max_rounds, &mut atrace)
        .unwrap();
    assert_eq!(seq_states, astates, "csr async states");
    assert_eq!(
        seq.metrics(),
        anet.metrics().protocol_only(),
        "csr async metrics"
    );
    assert_eq!(seq_events, atrace.into_events(), "csr async trace");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn csr_built_network_agrees_with_graph_built(
        n in 2usize..=96,
        density in 1.0f64..3.0,
        seed in any::<u64>(),
        ttl in 1u32..5,
    ) {
        let m = (((n as f64) * density) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi_gnm(n, m, seed ^ 0xC52);
        assert_csr_parity(&g, seed, ttl);
    }
}

/// Budget-violation runs on a CSR-built network leave the Graph-built
/// network's exact error, partial metrics, and partial trace stream —
/// sequential and at every thread count.
#[test]
fn csr_budget_violation_agrees() {
    #[derive(Debug)]
    struct LateFat;
    impl Protocol for LateFat {
        type Msg = Vec<u64>;
        fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
            ctx.broadcast(vec![1]);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _: &[(NodeId, Vec<u64>)]) {
            if ctx.tracing() {
                ctx.enter_phase(format!("r{}", ctx.round()));
            }
            if ctx.round() == 2 && ctx.me().0 >= 20 {
                ctx.broadcast(vec![0; 7]);
            } else if ctx.round() < 2 {
                ctx.broadcast(vec![ctx.round() as u64]);
            }
        }
    }
    let g = generators::erdos_renyi_gnm(40, 100, 5);
    let csr = std::sync::Arc::new(spanner_netsim::CsrAdjacency::from_graph(&g));
    let mut seq = Network::new(&g, MessageBudget::Words(4), 9);
    let mut seq_trace = RingBufferSink::new(TRACE_CAP);
    let seq_err = seq
        .run_traced(|_, _| LateFat, 32, &mut seq_trace)
        .unwrap_err();
    assert!(matches!(seq_err, RunError::Budget(_)));
    let seq_events = seq_trace.into_events();

    let mut cseq = Network::from_csr(std::sync::Arc::clone(&csr), MessageBudget::Words(4), 9);
    let mut ctrace = RingBufferSink::new(TRACE_CAP);
    let cerr = cseq
        .run_traced(|_, _| LateFat, 32, &mut ctrace)
        .unwrap_err();
    assert_eq!(seq_err, cerr, "csr sequential error");
    assert_eq!(seq.metrics(), cseq.metrics(), "csr sequential metrics");
    assert_eq!(seq_events, ctrace.into_events(), "csr sequential trace");

    for threads in [1usize, 2, 4, 8] {
        let mut par = ParallelNetwork::from_csr(
            std::sync::Arc::clone(&csr),
            MessageBudget::Words(4),
            9,
            threads,
        );
        let mut par_trace = RingBufferSink::new(TRACE_CAP);
        let par_err = par
            .run_traced(|_, _| LateFat, 32, &mut par_trace)
            .unwrap_err();
        assert_eq!(seq_err, par_err, "{threads} threads");
        assert_eq!(seq.metrics(), par.metrics(), "{threads} threads");
        assert_eq!(
            seq_events,
            par_trace.into_events(),
            "csr trace, {threads} threads"
        );
    }
}

/// An empty graph still produces a well-formed stream (the init round and a
/// successful RunEnd), identically in both executors.
#[test]
fn trace_parity_on_empty_graph() {
    let g = Graph::from_edges(0, std::iter::empty::<(u32, u32)>());
    let mut seq = Network::new(&g, MessageBudget::CONGEST, 1);
    let mut seq_trace = RingBufferSink::new(16);
    seq.run_traced(|_, _| GossipHash::new(2), 8, &mut seq_trace)
        .unwrap();
    let seq_events = seq_trace.into_events();
    assert_eq!(seq_events.len(), 2);
    assert!(matches!(
        seq_events.last(),
        Some(TraceEvent::RunEnd {
            rounds: 0,
            error: None,
            ..
        })
    ));
    for threads in [1usize, 4] {
        let mut par = ParallelNetwork::new(&g, MessageBudget::CONGEST, 1, threads);
        let mut par_trace = RingBufferSink::new(16);
        par.run_traced(|_, _| GossipHash::new(2), 8, &mut par_trace)
            .unwrap();
        assert_eq!(seq_events, par_trace.into_events(), "{threads} threads");
    }
}
