//! Approximate distance oracles — the application domain the paper's
//! conclusion points at.
//!
//! *"Perhaps the most interesting applications of spanners are in
//! constructing distance labeling schemes, approximate distance oracles,
//! and compact routing tables"* (Pettie, Sect. 5). This crate implements
//! the canonical such structure, the **Thorup–Zwick oracle** \[38\]:
//! O(k·n^{1+1/k}) space, O(k) query time, stretch 2k−1 — and the
//! (2k−1)-spanner it induces (the union of the bunch shortest paths),
//! which is the "same girth-bound tradeoff" the paper's open problems
//! measure everything against.
//!
//! The oracle construction reuses the level-sampling idiom shared with the
//! Fibonacci spanner: `A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k−1}`, sampling probability
//! n^{−1/k} per level, with *witnesses* `p_i(v)` (nearest `A_i` vertex,
//! min-id tie-break) and *bunches*
//! `B(v) = ∪_i { w ∈ A_i \ A_{i+1} : δ(w, v) < δ(v, A_{i+1}) }`.

#![deny(missing_docs)]

pub mod routing;

pub use routing::{Address, RoutingScheme};

use std::collections::HashMap;
use std::fmt;

use rand::Rng;

use spanner_graph::distance::UNREACHABLE;
use spanner_graph::{DistanceEngine, EdgeSet, Graph, NodeId};
use spanner_netsim::rng::node_rng;
use ultrasparse::Spanner;

/// Typed error returned by the fallible query endpoints
/// ([`DistanceOracle::try_query`], [`RoutingScheme::try_route`], …): the
/// caller supplied a node id that is not a vertex of the graph the
/// structure was built over.
///
/// The panicking endpoints ([`DistanceOracle::query`],
/// [`RoutingScheme::route`]) remain for callers that control their
/// inputs; serving layers, which face untrusted ids, use the `try_*`
/// forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The node id is out of range for the underlying graph.
    UnknownNode {
        /// The offending id.
        node: NodeId,
        /// Number of vertices of the graph; valid ids are `0..nodes`.
        nodes: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryError::UnknownNode { node, nodes } => {
                write!(f, "unknown node {node}: graph has {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-query cost counters — the message/word lens of the Bitton et al.
/// message-reduction line of work applied to oracle queries: how many
/// table reads a query performed, independent of wall-clock time.
///
/// A bunch probe touches one hash-table entry (two `O(log n)`-bit words:
/// key and distance); a witness read touches one entry of the `p_i`
/// witness array (also two words). `words()` is the total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Hash probes into bunch tables `B(·)`.
    pub bunch_probes: u32,
    /// Reads of witness entries `p_i(·)`.
    pub witness_reads: u32,
}

impl QueryCost {
    /// Total `O(log n)`-bit words touched (two per probe/read).
    pub fn words(&self) -> u32 {
        2 * (self.bunch_probes + self.witness_reads)
    }
}

/// A Thorup–Zwick approximate distance oracle with stretch 2k−1.
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    k: u32,
    /// `witness[i][v]` = (distance to A_i, p_i(v)); `None` if A_i is
    /// unreachable from v (or empty).
    witness: Vec<Vec<Option<(u32, NodeId)>>>,
    /// Bunch of every vertex: sampled vertex → exact distance.
    bunch: Vec<HashMap<NodeId, u32>>,
    /// Edges of the induced (2k−1)-spanner (union of bunch/witness
    /// shortest-path trees).
    spanner_edges: EdgeSet,
}

impl DistanceOracle {
    /// Builds the oracle with `k` levels. Deterministic in `seed`.
    ///
    /// Expected preprocessing O(k·m·n^{1/k})-ish (truncated BFS per
    /// sampled vertex); expected size O(k·n^{1+1/k}).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build(g: &Graph, k: u32, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = g.node_count();
        let p = (n.max(2) as f64).powf(-1.0 / k as f64);

        // Level of each vertex: largest i with v ∈ A_i.
        let level: Vec<u32> = g
            .nodes()
            .map(|v| {
                let mut rng = node_rng(seed, v.0, 3);
                let mut l = 0;
                for _ in 1..k {
                    if rng.gen::<f64>() < p {
                        l += 1;
                    } else {
                        break;
                    }
                }
                l
            })
            .collect();

        // Witnesses per level (multi-source BFS with min-id attribution),
        // computed over the flat distance engine's CSR adjacency.
        let engine = DistanceEngine::new(g);
        let mut witness: Vec<Vec<Option<(u32, NodeId)>>> = Vec::with_capacity(k as usize);
        for i in 0..k {
            let sources: Vec<NodeId> = g.nodes().filter(|v| level[v.index()] >= i).collect();
            let bfs = engine.nearest_sources(&sources);
            witness.push(
                g.nodes()
                    .map(|v| {
                        (bfs.dist[v.index()] != UNREACHABLE)
                            .then(|| (bfs.dist[v.index()], NodeId(bfs.source[v.index()])))
                    })
                    .collect(),
            );
        }

        // Bunches: for each w at exactly level i, truncated BFS keeping
        // vertices v with δ(w, v) < δ(v, A_{i+1}); record parent edges for
        // the induced spanner.
        let mut bunch: Vec<HashMap<NodeId, u32>> = vec![HashMap::new(); n];
        let mut spanner_edges = EdgeSet::new(g);
        let mut dist = vec![UNREACHABLE; n];
        let mut parent: Vec<NodeId> = vec![NodeId(0); n];
        let mut touched: Vec<usize> = Vec::new();
        for w in g.nodes() {
            let i = level[w.index()];
            // δ(v, A_{i+1}) truncation; the top level has no truncation.
            let trunc: Option<&Vec<Option<(u32, NodeId)>>> = witness.get(i as usize + 1);
            debug_assert!(touched.is_empty());
            dist[w.index()] = 0;
            touched.push(w.index());
            let mut queue = std::collections::VecDeque::from([w]);
            while let Some(x) = queue.pop_front() {
                let dx = dist[x.index()];
                for &(y, _) in g.neighbors(x) {
                    if dist[y.index()] != UNREACHABLE {
                        if dist[y.index()] == dx + 1 && x < parent[y.index()] {
                            parent[y.index()] = x;
                        }
                        continue;
                    }
                    // Truncation: keep y iff δ(w,y) < δ(y, A_{i+1}).
                    let keep = match trunc {
                        None => true,
                        Some(t) => match t[y.index()] {
                            None => true,
                            Some((dnext, _)) => dx + 1 < dnext,
                        },
                    };
                    if keep {
                        dist[y.index()] = dx + 1;
                        parent[y.index()] = x;
                        touched.push(y.index());
                        queue.push_back(y);
                    }
                }
            }
            for &vi in &touched {
                if vi != w.index() {
                    bunch[vi].insert(w, dist[vi]);
                    let v = NodeId(vi as u32);
                    let e = g.find_edge(v, parent[vi]).expect("tree edge");
                    spanner_edges.insert(e);
                }
                dist[vi] = UNREACHABLE;
            }
            touched.clear();
        }
        // Witness paths: each v keeps an edge toward each p_i(v) tree
        // (needed so queries are realizable inside the spanner).
        for wit in witness.iter().take(k as usize) {
            for v in g.nodes() {
                let Some((d, src)) = wit[v.index()] else {
                    continue;
                };
                if d == 0 {
                    continue;
                }
                let parent = g
                    .neighbor_ids(v)
                    .filter(|u| wit[u.index()].is_some_and(|(du, su)| du + 1 == d && su == src))
                    .min()
                    .expect("witness parent exists");
                spanner_edges.insert(g.find_edge(v, parent).expect("edge"));
            }
        }

        DistanceOracle {
            k,
            witness,
            bunch,
            spanner_edges,
        }
    }

    /// The stretch parameter: queries return at most (2k−1)·δ(u, v).
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// The number of levels `k` the oracle was built with.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices of the graph the oracle was built over; valid
    /// query ids are `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.witness[0].len()
    }

    fn check(&self, v: NodeId) -> Result<(), QueryError> {
        if v.index() < self.node_count() {
            Ok(())
        } else {
            Err(QueryError::UnknownNode {
                node: v,
                nodes: self.node_count(),
            })
        }
    }

    /// Total bunch entries — the oracle's space, up to the O(k·n) witness
    /// arrays.
    pub fn size(&self) -> usize {
        self.bunch.iter().map(HashMap::len).sum()
    }

    /// Estimated distance between `u` and `v`: exact distances compose as
    /// `δ(w, u) + δ(w, v)` for the first witness `w` of one endpoint lying
    /// in the other's bunch. Returns
    /// [`UNREACHABLE`] for
    /// disconnected pairs.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a vertex of the underlying graph; use
    /// [`DistanceOracle::try_query`] for untrusted ids.
    pub fn query(&self, u: NodeId, v: NodeId) -> u32 {
        match self.query_cost(u, v) {
            Ok((d, _)) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`DistanceOracle::query`]: returns a typed
    /// [`QueryError`] instead of panicking on out-of-range ids.
    pub fn try_query(&self, u: NodeId, v: NodeId) -> Result<u32, QueryError> {
        self.query_cost(u, v).map(|(d, _)| d)
    }

    /// [`DistanceOracle::try_query`] plus the per-query [`QueryCost`]
    /// (bunch probes and witness reads performed by the query chain).
    pub fn query_cost(&self, mut u: NodeId, mut v: NodeId) -> Result<(u32, QueryCost), QueryError> {
        self.check(u)?;
        self.check(v)?;
        let mut cost = QueryCost::default();
        if u == v {
            return Ok((0, cost));
        }
        let mut w = u;
        let mut dwu = 0u32;
        for i in 0..self.k as usize {
            // Invariant: w = p_i(u) with δ(w, u) = dwu.
            if w == v {
                return Ok((dwu, cost));
            }
            cost.bunch_probes += 1;
            if let Some(&dwv) = self.bunch[v.index()].get(&w) {
                return Ok((dwu + dwv, cost));
            }
            if i + 1 == self.k as usize {
                break;
            }
            std::mem::swap(&mut u, &mut v);
            cost.witness_reads += 1;
            match self.witness[i + 1][u.index()] {
                Some((d, s)) => {
                    dwu = d;
                    w = s;
                }
                None => return Ok((UNREACHABLE, cost)),
            }
        }
        Ok((UNREACHABLE, cost))
    }

    /// The direct-probe leg of the query: `Some(0)` if `u == v`, the exact
    /// distance `δ(u, v)` if `u ∈ B(v)`, `None` otherwise.
    ///
    /// This is the first step of the standard query chain, split out so a
    /// serving layer can resolve it before consulting a result cache —
    /// direct hits are exact (tighter than any landmark leg) and must win
    /// for cached and uncached responses to agree byte-for-byte.
    pub fn direct_distance(&self, u: NodeId, v: NodeId) -> Result<Option<u32>, QueryError> {
        self.check(u)?;
        self.check(v)?;
        if u == v {
            return Ok(Some(0));
        }
        Ok(self.bunch[v.index()].get(&u).copied())
    }

    /// The level-1 witness `p_1(v)` of `v` — its *landmark bucket* — and
    /// the distance to it, or `None` if `A_1` is unreachable from `v` (or
    /// `k == 1`, where no sampled level exists).
    pub fn sampled_witness(&self, v: NodeId) -> Result<Option<(u32, NodeId)>, QueryError> {
        self.check(v)?;
        Ok(self.witness.get(1).and_then(|w| w[v.index()]))
    }

    /// The landmark leg `δ(w, u)` resolved through `u`'s bunch, where `w`
    /// must be a level-1 witness (a member of `A_1`); returns
    /// [`UNREACHABLE`] if `w ∉ B(u)` (different component).
    ///
    /// For `k = 2` this is exactly the tail of the query chain after a
    /// direct-probe miss: every reachable `A_1` vertex lies in every
    /// bunch (the top level has no truncation), so
    /// `query(u, v) = δ(v, p_1(v)) + landmark_leg(p_1(v), u)` whenever the
    /// direct probe misses. The value is a pure function of `(w, u)` —
    /// the soundness basis for landmark-bucket result caching (see
    /// DESIGN.md §2.11).
    pub fn landmark_leg(&self, w: NodeId, u: NodeId) -> Result<u32, QueryError> {
        self.check(w)?;
        self.check(u)?;
        if w == u {
            return Ok(0);
        }
        Ok(self.bunch[u.index()]
            .get(&w)
            .copied()
            .unwrap_or(UNREACHABLE))
    }

    /// The (2k−1)-spanner induced by the oracle's shortest-path trees.
    pub fn to_spanner(&self) -> Spanner {
        Spanner::from_edges(self.spanner_edges.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::distance::Apsp;
    use spanner_graph::generators;

    fn check_oracle(g: &Graph, k: u32, seed: u64) {
        let oracle = DistanceOracle::build(g, k, seed);
        let apsp = Apsp::new(g);
        let stretch = oracle.stretch() as u64;
        for u in g.nodes() {
            for v in g.nodes() {
                let exact = apsp.dist(u, v);
                let est = oracle.query(u, v);
                if exact == UNREACHABLE {
                    assert_eq!(est, UNREACHABLE, "({u},{v})");
                } else {
                    assert!(est as u64 >= exact as u64, "({u},{v}): est < exact");
                    assert!(
                        est as u64 <= stretch * exact as u64,
                        "({u},{v}): est {est} > {stretch} * {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn stretch_guarantee_small_graphs() {
        for (seed, k) in [(1u64, 2u32), (2, 3), (3, 4)] {
            let g = generators::connected_gnm(120, 600, seed);
            check_oracle(&g, k, seed + 10);
        }
    }

    #[test]
    fn stretch_on_structured_graphs() {
        check_oracle(&generators::grid(9, 11), 2, 5);
        check_oracle(&generators::cycle(60), 3, 6);
        check_oracle(&generators::caveman(8, 8, 5, 2), 2, 7);
    }

    #[test]
    fn disconnected_pairs() {
        let g = Graph::from_edges(6, [(0u32, 1), (1, 2), (3, 4), (4, 5)]);
        let oracle = DistanceOracle::build(&g, 2, 1);
        assert_eq!(oracle.query(NodeId(0), NodeId(3)), UNREACHABLE);
        assert!(oracle.query(NodeId(0), NodeId(2)) >= 2);
    }

    #[test]
    fn k1_is_exact() {
        // k = 1: every vertex's bunch is everything — exact distances.
        let g = generators::connected_gnm(80, 300, 4);
        let oracle = DistanceOracle::build(&g, 1, 2);
        let apsp = Apsp::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(oracle.query(u, v), apsp.dist(u, v));
            }
        }
    }

    #[test]
    fn size_scales_with_k() {
        let g = generators::connected_gnm(2_000, 30_000, 9);
        let o2 = DistanceOracle::build(&g, 2, 3);
        let o4 = DistanceOracle::build(&g, 4, 3);
        let n = g.node_count() as f64;
        // k = 2: E[size] ~ k n^{3/2}; generous constant.
        assert!(
            (o2.size() as f64) < 6.0 * n.powf(1.5),
            "k=2 size {}",
            o2.size()
        );
        // Larger k is smaller (asymptotically); allow noise.
        assert!(
            (o4.size() as f64) < 1.2 * o2.size() as f64,
            "k=4 {} vs k=2 {}",
            o4.size(),
            o2.size()
        );
    }

    #[test]
    fn induced_spanner_has_oracle_stretch() {
        let g = generators::connected_gnm(200, 1_200, 6);
        let k = 2;
        let oracle = DistanceOracle::build(&g, k, 8);
        let s = oracle.to_spanner();
        assert!(s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        assert!(
            r.satisfies_multiplicative((2 * k - 1) as f64),
            "spanner stretch {}",
            r.max_multiplicative
        );
    }

    #[test]
    fn query_symmetric_enough() {
        // The TZ query is not literally symmetric, but both directions
        // must satisfy the stretch bound; check they agree on a sample.
        let g = generators::connected_gnm(150, 700, 3);
        let oracle = DistanceOracle::build(&g, 3, 4);
        let apsp = Apsp::new(&g);
        for (a, b) in [(0u32, 97), (5, 60), (33, 149)] {
            let (u, v) = (NodeId(a), NodeId(b));
            let exact = apsp.dist(u, v) as u64;
            for est in [oracle.query(u, v), oracle.query(v, u)] {
                assert!(est as u64 >= exact);
                assert!(est as u64 <= 5 * exact);
            }
        }
    }

    #[test]
    fn try_query_rejects_unknown_nodes_on_both_endpoints() {
        let g = generators::connected_gnm(40, 120, 11);
        let oracle = DistanceOracle::build(&g, 2, 1);
        let bad = NodeId(40);
        let err = QueryError::UnknownNode {
            node: bad,
            nodes: 40,
        };
        assert_eq!(oracle.try_query(bad, NodeId(0)), Err(err));
        assert_eq!(oracle.try_query(NodeId(0), bad), Err(err));
        assert_eq!(
            oracle.try_query(NodeId(u32::MAX), NodeId(0)),
            Err(QueryError::UnknownNode {
                node: NodeId(u32::MAX),
                nodes: 40
            })
        );
        // In-range ids agree with the panicking endpoint.
        for (a, b) in [(0u32, 1), (3, 17), (39, 0)] {
            assert_eq!(
                oracle.try_query(NodeId(a), NodeId(b)),
                Ok(oracle.query(NodeId(a), NodeId(b)))
            );
        }
        // The decomposed helpers reject bad ids too.
        assert!(oracle.direct_distance(bad, NodeId(0)).is_err());
        assert!(oracle.direct_distance(NodeId(0), bad).is_err());
        assert!(oracle.sampled_witness(bad).is_err());
        assert!(oracle.landmark_leg(bad, NodeId(0)).is_err());
        assert!(oracle.landmark_leg(NodeId(0), bad).is_err());
    }

    #[test]
    fn query_cost_counts_table_reads() {
        let g = generators::connected_gnm(60, 200, 12);
        let oracle = DistanceOracle::build(&g, 3, 5);
        let (_, zero) = oracle.query_cost(NodeId(7), NodeId(7)).unwrap();
        assert_eq!(zero, QueryCost::default());
        assert_eq!(zero.words(), 0);
        let mut max_probes = 0;
        for (a, b) in [(0u32, 1), (2, 50), (13, 44), (59, 3)] {
            let (d, cost) = oracle.query_cost(NodeId(a), NodeId(b)).unwrap();
            assert_eq!(d, oracle.query(NodeId(a), NodeId(b)));
            // The chain does at most k bunch probes and k−1 witness reads.
            assert!(cost.bunch_probes >= 1 && cost.bunch_probes <= oracle.k());
            assert!(cost.witness_reads < oracle.k());
            assert_eq!(cost.words(), 2 * (cost.bunch_probes + cost.witness_reads));
            max_probes = max_probes.max(cost.bunch_probes);
        }
        assert!(max_probes >= 1);
    }

    /// The serving layer's decomposition (direct probe, then landmark leg
    /// through the level-1 witness of the second endpoint) must reproduce
    /// `query` exactly for k = 2 — on connected and disconnected graphs.
    #[test]
    fn decomposed_k2_query_matches_query() {
        let graphs = [
            generators::connected_gnm(80, 300, 21),
            Graph::from_edges(9, [(0u32, 1), (1, 2), (2, 3), (5, 6), (6, 7), (7, 8)]),
            generators::grid(5, 7),
        ];
        for (gi, g) in graphs.iter().enumerate() {
            let oracle = DistanceOracle::build(g, 2, 17);
            for u in g.nodes() {
                for v in g.nodes() {
                    let expect = oracle.query(u, v);
                    let got = match oracle.direct_distance(u, v).unwrap() {
                        Some(d) => d,
                        None => match oracle.sampled_witness(v).unwrap() {
                            None => UNREACHABLE,
                            Some((dv, w)) => match oracle.landmark_leg(w, u).unwrap() {
                                UNREACHABLE => UNREACHABLE,
                                leg => dv + leg,
                            },
                        },
                    };
                    assert_eq!(got, expect, "graph {gi}, pair ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = generators::connected_gnm(100, 400, 2);
        let a = DistanceOracle::build(&g, 2, 9);
        let b = DistanceOracle::build(&g, 2, 9);
        assert_eq!(a.size(), b.size());
        assert_eq!(
            a.query(NodeId(0), NodeId(50)),
            b.query(NodeId(0), NodeId(50))
        );
    }
}
