//! Approximate distance oracles — the application domain the paper's
//! conclusion points at.
//!
//! *"Perhaps the most interesting applications of spanners are in
//! constructing distance labeling schemes, approximate distance oracles,
//! and compact routing tables"* (Pettie, Sect. 5). This crate implements
//! the canonical such structure, the **Thorup–Zwick oracle** \[38\]:
//! O(k·n^{1+1/k}) space, O(k) query time, stretch 2k−1 — and the
//! (2k−1)-spanner it induces (the union of the bunch shortest paths),
//! which is the "same girth-bound tradeoff" the paper's open problems
//! measure everything against.
//!
//! The oracle construction reuses the level-sampling idiom shared with the
//! Fibonacci spanner: `A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k−1}`, sampling probability
//! n^{−1/k} per level, with *witnesses* `p_i(v)` (nearest `A_i` vertex,
//! min-id tie-break) and *bunches*
//! `B(v) = ∪_i { w ∈ A_i \ A_{i+1} : δ(w, v) < δ(v, A_{i+1}) }`.

pub mod routing;

pub use routing::{Address, RoutingScheme};

use std::collections::HashMap;

use rand::Rng;

use spanner_graph::distance::UNREACHABLE;
use spanner_graph::{DistanceEngine, EdgeSet, Graph, NodeId};
use spanner_netsim::rng::node_rng;
use ultrasparse::Spanner;

/// A Thorup–Zwick approximate distance oracle with stretch 2k−1.
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    k: u32,
    /// `witness[i][v]` = (distance to A_i, p_i(v)); `None` if A_i is
    /// unreachable from v (or empty).
    witness: Vec<Vec<Option<(u32, NodeId)>>>,
    /// Bunch of every vertex: sampled vertex → exact distance.
    bunch: Vec<HashMap<NodeId, u32>>,
    /// Edges of the induced (2k−1)-spanner (union of bunch/witness
    /// shortest-path trees).
    spanner_edges: EdgeSet,
}

impl DistanceOracle {
    /// Builds the oracle with `k` levels. Deterministic in `seed`.
    ///
    /// Expected preprocessing O(k·m·n^{1/k})-ish (truncated BFS per
    /// sampled vertex); expected size O(k·n^{1+1/k}).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build(g: &Graph, k: u32, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = g.node_count();
        let p = (n.max(2) as f64).powf(-1.0 / k as f64);

        // Level of each vertex: largest i with v ∈ A_i.
        let level: Vec<u32> = g
            .nodes()
            .map(|v| {
                let mut rng = node_rng(seed, v.0, 3);
                let mut l = 0;
                for _ in 1..k {
                    if rng.gen::<f64>() < p {
                        l += 1;
                    } else {
                        break;
                    }
                }
                l
            })
            .collect();

        // Witnesses per level (multi-source BFS with min-id attribution),
        // computed over the flat distance engine's CSR adjacency.
        let engine = DistanceEngine::new(g);
        let mut witness: Vec<Vec<Option<(u32, NodeId)>>> = Vec::with_capacity(k as usize);
        for i in 0..k {
            let sources: Vec<NodeId> = g.nodes().filter(|v| level[v.index()] >= i).collect();
            let bfs = engine.nearest_sources(&sources);
            witness.push(
                g.nodes()
                    .map(|v| {
                        (bfs.dist[v.index()] != UNREACHABLE)
                            .then(|| (bfs.dist[v.index()], NodeId(bfs.source[v.index()])))
                    })
                    .collect(),
            );
        }

        // Bunches: for each w at exactly level i, truncated BFS keeping
        // vertices v with δ(w, v) < δ(v, A_{i+1}); record parent edges for
        // the induced spanner.
        let mut bunch: Vec<HashMap<NodeId, u32>> = vec![HashMap::new(); n];
        let mut spanner_edges = EdgeSet::new(g);
        let mut dist = vec![UNREACHABLE; n];
        let mut parent: Vec<NodeId> = vec![NodeId(0); n];
        let mut touched: Vec<usize> = Vec::new();
        for w in g.nodes() {
            let i = level[w.index()];
            // δ(v, A_{i+1}) truncation; the top level has no truncation.
            let trunc: Option<&Vec<Option<(u32, NodeId)>>> = witness.get(i as usize + 1);
            debug_assert!(touched.is_empty());
            dist[w.index()] = 0;
            touched.push(w.index());
            let mut queue = std::collections::VecDeque::from([w]);
            while let Some(x) = queue.pop_front() {
                let dx = dist[x.index()];
                for &(y, _) in g.neighbors(x) {
                    if dist[y.index()] != UNREACHABLE {
                        if dist[y.index()] == dx + 1 && x < parent[y.index()] {
                            parent[y.index()] = x;
                        }
                        continue;
                    }
                    // Truncation: keep y iff δ(w,y) < δ(y, A_{i+1}).
                    let keep = match trunc {
                        None => true,
                        Some(t) => match t[y.index()] {
                            None => true,
                            Some((dnext, _)) => dx + 1 < dnext,
                        },
                    };
                    if keep {
                        dist[y.index()] = dx + 1;
                        parent[y.index()] = x;
                        touched.push(y.index());
                        queue.push_back(y);
                    }
                }
            }
            for &vi in &touched {
                if vi != w.index() {
                    bunch[vi].insert(w, dist[vi]);
                    let v = NodeId(vi as u32);
                    let e = g.find_edge(v, parent[vi]).expect("tree edge");
                    spanner_edges.insert(e);
                }
                dist[vi] = UNREACHABLE;
            }
            touched.clear();
        }
        // Witness paths: each v keeps an edge toward each p_i(v) tree
        // (needed so queries are realizable inside the spanner).
        for wit in witness.iter().take(k as usize) {
            for v in g.nodes() {
                let Some((d, src)) = wit[v.index()] else {
                    continue;
                };
                if d == 0 {
                    continue;
                }
                let parent = g
                    .neighbor_ids(v)
                    .filter(|u| wit[u.index()].is_some_and(|(du, su)| du + 1 == d && su == src))
                    .min()
                    .expect("witness parent exists");
                spanner_edges.insert(g.find_edge(v, parent).expect("edge"));
            }
        }

        DistanceOracle {
            k,
            witness,
            bunch,
            spanner_edges,
        }
    }

    /// The stretch parameter: queries return at most (2k−1)·δ(u, v).
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// Total bunch entries — the oracle's space, up to the O(k·n) witness
    /// arrays.
    pub fn size(&self) -> usize {
        self.bunch.iter().map(HashMap::len).sum()
    }

    /// Estimated distance between `u` and `v`: exact distances compose as
    /// `δ(w, u) + δ(w, v)` for the first witness `w` of one endpoint lying
    /// in the other's bunch. Returns
    /// [`UNREACHABLE`] for
    /// disconnected pairs.
    pub fn query(&self, mut u: NodeId, mut v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut w = u;
        let mut dwu = 0u32;
        for i in 0..self.k as usize {
            // Invariant: w = p_i(u) with δ(w, u) = dwu.
            if w == v {
                return dwu;
            }
            if let Some(&dwv) = self.bunch[v.index()].get(&w) {
                return dwu + dwv;
            }
            if i + 1 == self.k as usize {
                break;
            }
            std::mem::swap(&mut u, &mut v);
            match self.witness[i + 1][u.index()] {
                Some((d, s)) => {
                    dwu = d;
                    w = s;
                }
                None => return UNREACHABLE,
            }
        }
        UNREACHABLE
    }

    /// The (2k−1)-spanner induced by the oracle's shortest-path trees.
    pub fn to_spanner(&self) -> Spanner {
        Spanner::from_edges(self.spanner_edges.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::distance::Apsp;
    use spanner_graph::generators;

    fn check_oracle(g: &Graph, k: u32, seed: u64) {
        let oracle = DistanceOracle::build(g, k, seed);
        let apsp = Apsp::new(g);
        let stretch = oracle.stretch() as u64;
        for u in g.nodes() {
            for v in g.nodes() {
                let exact = apsp.dist(u, v);
                let est = oracle.query(u, v);
                if exact == UNREACHABLE {
                    assert_eq!(est, UNREACHABLE, "({u},{v})");
                } else {
                    assert!(est as u64 >= exact as u64, "({u},{v}): est < exact");
                    assert!(
                        est as u64 <= stretch * exact as u64,
                        "({u},{v}): est {est} > {stretch} * {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn stretch_guarantee_small_graphs() {
        for (seed, k) in [(1u64, 2u32), (2, 3), (3, 4)] {
            let g = generators::connected_gnm(120, 600, seed);
            check_oracle(&g, k, seed + 10);
        }
    }

    #[test]
    fn stretch_on_structured_graphs() {
        check_oracle(&generators::grid(9, 11), 2, 5);
        check_oracle(&generators::cycle(60), 3, 6);
        check_oracle(&generators::caveman(8, 8, 5, 2), 2, 7);
    }

    #[test]
    fn disconnected_pairs() {
        let g = Graph::from_edges(6, [(0u32, 1), (1, 2), (3, 4), (4, 5)]);
        let oracle = DistanceOracle::build(&g, 2, 1);
        assert_eq!(oracle.query(NodeId(0), NodeId(3)), UNREACHABLE);
        assert!(oracle.query(NodeId(0), NodeId(2)) >= 2);
    }

    #[test]
    fn k1_is_exact() {
        // k = 1: every vertex's bunch is everything — exact distances.
        let g = generators::connected_gnm(80, 300, 4);
        let oracle = DistanceOracle::build(&g, 1, 2);
        let apsp = Apsp::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(oracle.query(u, v), apsp.dist(u, v));
            }
        }
    }

    #[test]
    fn size_scales_with_k() {
        let g = generators::connected_gnm(2_000, 30_000, 9);
        let o2 = DistanceOracle::build(&g, 2, 3);
        let o4 = DistanceOracle::build(&g, 4, 3);
        let n = g.node_count() as f64;
        // k = 2: E[size] ~ k n^{3/2}; generous constant.
        assert!(
            (o2.size() as f64) < 6.0 * n.powf(1.5),
            "k=2 size {}",
            o2.size()
        );
        // Larger k is smaller (asymptotically); allow noise.
        assert!(
            (o4.size() as f64) < 1.2 * o2.size() as f64,
            "k=4 {} vs k=2 {}",
            o4.size(),
            o2.size()
        );
    }

    #[test]
    fn induced_spanner_has_oracle_stretch() {
        let g = generators::connected_gnm(200, 1_200, 6);
        let k = 2;
        let oracle = DistanceOracle::build(&g, k, 8);
        let s = oracle.to_spanner();
        assert!(s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        assert!(
            r.satisfies_multiplicative((2 * k - 1) as f64),
            "spanner stretch {}",
            r.max_multiplicative
        );
    }

    #[test]
    fn query_symmetric_enough() {
        // The TZ query is not literally symmetric, but both directions
        // must satisfy the stretch bound; check they agree on a sample.
        let g = generators::connected_gnm(150, 700, 3);
        let oracle = DistanceOracle::build(&g, 3, 4);
        let apsp = Apsp::new(&g);
        for (a, b) in [(0u32, 97), (5, 60), (33, 149)] {
            let (u, v) = (NodeId(a), NodeId(b));
            let exact = apsp.dist(u, v) as u64;
            for est in [oracle.query(u, v), oracle.query(v, u)] {
                assert!(est as u64 >= exact);
                assert!(est as u64 <= 5 * exact);
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = generators::connected_gnm(100, 400, 2);
        let a = DistanceOracle::build(&g, 2, 9);
        let b = DistanceOracle::build(&g, 2, 9);
        assert_eq!(a.size(), b.size());
        assert_eq!(
            a.query(NodeId(0), NodeId(50)),
            b.query(NodeId(0), NodeId(50))
        );
    }
}
