//! Landmark-based compact routing — the second application of the paper's
//! conclusion (*"compact routing tables that guarantee approximately
//! shortest routes"*), in the Cowen / Thorup–Zwick style.
//!
//! Every vertex keeps a small table:
//!
//! * a next hop toward every **landmark** (a ≈ n^{1/2}-size hitting set),
//! * a next hop toward every vertex whose *cluster* it belongs to — the
//!   same truncated clusters `C(w) = {x : δ(w,x) < δ(x, L)}` as the k = 2
//!   distance oracle, total size O(n^{3/2}) in expectation.
//!
//! A vertex's **address** is `(v, ℓ(v), reversed path ℓ(v) → v)` where
//! ℓ(v) is its nearest landmark. Routing from `u` to address(v) hops
//! toward `v` directly while the current vertex has a cluster entry for
//! `v`, otherwise toward `ℓ(v)`, finishing along the address path. The
//! delivered route provably satisfies
//!
//! ```text
//! |route| ≤ δ(u, v) + 2·δ(v, L)
//! ```
//!
//! i.e. multiplicative stretch ≤ 3 whenever δ(v, L) ≤ δ(u, v), and a small
//! additive surplus below that — the exact flavor of tradeoff the paper's
//! closing open problem asks about (`(3−ε)d + polylog` routes).

use std::collections::HashMap;

use rand::Rng;

use crate::QueryError;

use spanner_graph::traversal::{bfs_tree, multi_source_bfs};
use spanner_graph::{Graph, NodeId};
use spanner_netsim::rng::node_rng;

/// A routable address: who, their landmark, and the downhill path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// The destination vertex.
    pub target: NodeId,
    /// The destination's nearest landmark (min-id tie-break).
    pub landmark: NodeId,
    /// The path from the landmark to the target (exclusive of the
    /// landmark, inclusive of the target). Length δ(v, L).
    pub down_path: Vec<NodeId>,
}

impl Address {
    /// The label size in O(log n)-bit words.
    pub fn words(&self) -> usize {
        2 + self.down_path.len()
    }
}

/// Per-vertex routing state plus the global address book.
#[derive(Debug, Clone)]
pub struct RoutingScheme {
    /// `toward_landmark[v]` maps a landmark to v's next hop toward it.
    toward_landmark: Vec<HashMap<NodeId, NodeId>>,
    /// `cluster_hop[v]` maps a cluster owner w (with v ∈ C(w)) to v's
    /// next hop toward w.
    cluster_hop: Vec<HashMap<NodeId, NodeId>>,
    /// Address of every vertex.
    addresses: Vec<Address>,
    landmark_count: usize,
}

impl RoutingScheme {
    /// Builds the scheme. Deterministic in `seed`. Landmarks are sampled
    /// with probability n^{−1/2} and patched so every component has one.
    pub fn build(g: &Graph, seed: u64) -> Self {
        let n = g.node_count();
        let p = (n.max(4) as f64).powf(-0.5);
        let mut is_landmark: Vec<bool> = g
            .nodes()
            .map(|v| node_rng(seed, v.0, 4).gen::<f64>() < p)
            .collect();
        // Ensure every component has a landmark (its min-id vertex).
        let comps = spanner_graph::components::connected_components(g);
        let mut has = vec![false; comps.count];
        for v in g.nodes() {
            if is_landmark[v.index()] {
                has[comps.labels[v.index()] as usize] = true;
            }
        }
        for v in g.nodes() {
            let c = comps.labels[v.index()] as usize;
            if !has[c] {
                is_landmark[v.index()] = true;
                has[c] = true;
            }
        }
        let landmarks: Vec<NodeId> = g.nodes().filter(|v| is_landmark[v.index()]).collect();

        // Landmark trees: next hop toward each landmark, and the nearest
        // landmark of every vertex.
        let mut toward_landmark: Vec<HashMap<NodeId, NodeId>> = vec![HashMap::new(); n];
        let mut down_parent: HashMap<NodeId, Vec<Option<NodeId>>> = HashMap::new();
        for &l in &landmarks {
            let t = bfs_tree(g, l);
            for v in g.nodes() {
                if let Some(p) = t.parent[v.index()] {
                    toward_landmark[v.index()].insert(l, p);
                }
            }
            down_parent.insert(l, t.parent.clone());
        }
        let nearest = multi_source_bfs(g, &landmarks);

        // Clusters C(w) = {x : δ(w,x) < δ(x, L)} via truncated BFS, with
        // next hops toward w recorded at every member.
        let mut cluster_hop: Vec<HashMap<NodeId, NodeId>> = vec![HashMap::new(); n];
        let mut dist = vec![u32::MAX; n];
        let mut parent: Vec<NodeId> = vec![NodeId(0); n];
        let mut touched: Vec<usize> = Vec::new();
        for w in g.nodes() {
            debug_assert!(touched.is_empty());
            dist[w.index()] = 0;
            touched.push(w.index());
            let mut queue = std::collections::VecDeque::from([w]);
            while let Some(x) = queue.pop_front() {
                let dx = dist[x.index()];
                for &(y, _) in g.neighbors(x) {
                    if dist[y.index()] != u32::MAX {
                        if dist[y.index()] == dx + 1 && x < parent[y.index()] {
                            parent[y.index()] = x;
                        }
                        continue;
                    }
                    let keep = match nearest.dist[y.index()] {
                        None => true,
                        Some(dl) => dx + 1 < dl,
                    };
                    if keep {
                        dist[y.index()] = dx + 1;
                        parent[y.index()] = x;
                        touched.push(y.index());
                        queue.push_back(y);
                    }
                }
            }
            for &vi in &touched {
                if vi != w.index() {
                    cluster_hop[vi].insert(w, parent[vi]);
                }
                dist[vi] = u32::MAX;
            }
            touched.clear();
        }

        // Addresses: landmark + explicit downhill path.
        let addresses: Vec<Address> = g
            .nodes()
            .map(|v| {
                let l = nearest.source[v.index()].unwrap_or(v);
                let parents = down_parent.get(&l);
                let mut path = Vec::new();
                if let Some(parents) = parents {
                    // Reconstruct l -> v by walking v's parent chain.
                    let mut cur = v;
                    let mut rev = Vec::new();
                    while cur != l {
                        rev.push(cur);
                        match parents[cur.index()] {
                            Some(p) => cur = p,
                            None => break,
                        }
                    }
                    rev.reverse();
                    path = rev;
                }
                Address {
                    target: v,
                    landmark: l,
                    down_path: path,
                }
            })
            .collect();

        RoutingScheme {
            toward_landmark,
            cluster_hop,
            addresses,
            landmark_count: landmarks.len(),
        }
    }

    /// Number of landmarks chosen.
    pub fn landmark_count(&self) -> usize {
        self.landmark_count
    }

    /// Total routing-table entries across all vertices (the scheme's
    /// space, excluding addresses).
    pub fn table_entries(&self) -> usize {
        self.toward_landmark.iter().map(HashMap::len).sum::<usize>()
            + self.cluster_hop.iter().map(HashMap::len).sum::<usize>()
    }

    /// Number of vertices of the graph the scheme was built over; valid
    /// ids are `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.addresses.len()
    }

    fn check(&self, v: NodeId) -> Result<(), QueryError> {
        if v.index() < self.node_count() {
            Ok(())
        } else {
            Err(QueryError::UnknownNode {
                node: v,
                nodes: self.node_count(),
            })
        }
    }

    /// The address of `v` (what a sender must know).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the underlying graph; use
    /// [`RoutingScheme::try_address`] for untrusted ids.
    pub fn address(&self, v: NodeId) -> &Address {
        &self.addresses[v.index()]
    }

    /// Fallible [`RoutingScheme::address`]: returns a typed
    /// [`QueryError`] instead of panicking on an out-of-range id.
    pub fn try_address(&self, v: NodeId) -> Result<&Address, QueryError> {
        self.check(v)?;
        Ok(&self.addresses[v.index()])
    }

    /// Routes from `src` to `target` in one call, validating both ids:
    /// [`RoutingScheme::try_address`] + [`RoutingScheme::route`] with a
    /// typed [`QueryError`] instead of a panic on out-of-range input.
    /// `Ok(None)` means the endpoints lie in different components.
    pub fn try_route(
        &self,
        src: NodeId,
        target: NodeId,
    ) -> Result<Option<Vec<NodeId>>, QueryError> {
        self.check(src)?;
        let addr = self.try_address(target)?;
        Ok(self.route(src, addr))
    }

    /// Routes a packet from `src` to `addr`, returning the vertex path
    /// (inclusive of both endpoints), or `None` if undeliverable
    /// (different components).
    ///
    /// The decision at each hop uses only that vertex's local table and
    /// the address — no global state.
    pub fn route(&self, src: NodeId, addr: &Address) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        let budget = 4 * self.addresses.len() + 16; // safety net
        while cur != addr.target && path.len() < budget {
            // Phase 3: on the downhill path already?
            if let Some(pos) = addr.down_path.iter().position(|&x| x == cur) {
                path.extend_from_slice(&addr.down_path[pos + 1..]);
                return Some(path);
            }
            if cur == addr.landmark {
                path.extend_from_slice(&addr.down_path);
                return Some(path);
            }
            // Phase 1: direct cluster entry.
            let hop = if let Some(&h) = self.cluster_hop[cur.index()].get(&addr.target) {
                h
            } else if let Some(&h) = self.toward_landmark[cur.index()].get(&addr.landmark) {
                // Phase 2: toward the destination's landmark.
                h
            } else {
                return None; // different component
            };
            path.push(hop);
            cur = hop;
        }
        (cur == addr.target).then_some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::distance::Apsp;
    use spanner_graph::generators;

    fn check_routes(g: &Graph, seed: u64) {
        let scheme = RoutingScheme::build(g, seed);
        let apsp = Apsp::new(g);
        let nearest = {
            let landmarks: Vec<NodeId> = g
                .nodes()
                .filter(|v| {
                    scheme.address(*v).down_path.is_empty() && scheme.address(*v).landmark == *v
                })
                .collect();
            multi_source_bfs(g, &landmarks)
        };
        for u in g.nodes() {
            for v in g.nodes() {
                let exact = apsp.dist(u, v);
                let route = scheme.route(u, scheme.address(v));
                if exact == spanner_graph::distance::UNREACHABLE {
                    assert!(route.is_none(), "({u},{v}) routed across components");
                    continue;
                }
                let route = route.unwrap_or_else(|| panic!("({u},{v}) undeliverable"));
                assert_eq!(*route.first().unwrap(), u);
                assert_eq!(*route.last().unwrap(), v);
                for w in route.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "non-edge hop {}-{}", w[0], w[1]);
                }
                let len = (route.len() - 1) as u32;
                let dvl = nearest.dist[v.index()].unwrap_or(0);
                assert!(
                    len <= exact + 2 * dvl,
                    "({u},{v}): route {len} > {exact} + 2*{dvl}"
                );
            }
        }
    }

    #[test]
    fn routes_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generators::connected_gnm(120, 600, seed);
            check_routes(&g, seed + 40);
        }
    }

    #[test]
    fn routes_on_structured_graphs() {
        check_routes(&generators::grid(8, 10), 1);
        check_routes(&generators::cycle(50), 2);
        check_routes(&generators::caveman(6, 8, 4, 3), 3);
    }

    #[test]
    fn routes_on_disconnected_graph() {
        let g = Graph::from_edges(7, [(0u32, 1), (1, 2), (4, 5), (5, 6)]);
        check_routes(&g, 9);
    }

    #[test]
    fn table_space_subquadratic() {
        let n = 1_500;
        let g = generators::connected_gnm(n, 15_000, 7);
        let scheme = RoutingScheme::build(&g, 3);
        let entries = scheme.table_entries() as f64;
        // O(n^{3/2}) with modest constants (landmark trees dominate).
        assert!(
            entries < 8.0 * (n as f64).powf(1.5),
            "table entries {entries}"
        );
        assert!(scheme.landmark_count() >= 1);
        // Addresses are short on a dense graph.
        let max_label = g.nodes().map(|v| scheme.address(v).words()).max().unwrap();
        assert!(max_label < 16, "address label {max_label} words");
    }

    #[test]
    fn try_route_rejects_unknown_nodes_on_both_endpoints() {
        let g = generators::connected_gnm(30, 90, 13);
        let scheme = RoutingScheme::build(&g, 2);
        let bad = NodeId(30);
        let err = QueryError::UnknownNode {
            node: bad,
            nodes: 30,
        };
        assert_eq!(scheme.try_route(bad, NodeId(0)), Err(err));
        assert_eq!(scheme.try_route(NodeId(0), bad), Err(err));
        assert!(scheme.try_address(bad).is_err());
        // Valid pairs agree with the panicking path.
        for (a, b) in [(0u32, 29), (7, 7), (12, 3)] {
            let (u, v) = (NodeId(a), NodeId(b));
            assert_eq!(
                scheme.try_route(u, v),
                Ok(scheme.route(u, scheme.address(v)))
            );
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let g = generators::path(5);
        let scheme = RoutingScheme::build(&g, 1);
        let r = scheme.route(NodeId(2), scheme.address(NodeId(2))).unwrap();
        assert_eq!(r, vec![NodeId(2)]);
    }
}
