//! Facade crate for the ultrasparse-spanners reproduction of
//! Pettie, *Distributed algorithms for ultrasparse spanners and linear size
//! skeletons* (PODC 2008).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`graph`] — graph substrate (generators, BFS, distances),
//! * [`netsim`] — synchronous message-passing simulator,
//! * [`core`] — the paper's algorithms (linear-size skeletons, Fibonacci
//!   spanners),
//! * [`baselines`] — comparison algorithms from the paper's Fig. 1,
//! * [`lowerbound`] — the Sect. 3 lower-bound gadget and experiments,
//! * [`oracle`] — approximate distance oracles (the conclusion's
//!   application domain),
//! * [`serve`] — the batched distance/routing query server over the
//!   oracle (PROTOCOL.md line protocol, result cache, load generator
//!   workloads),
//! * [`store`] — versioned on-disk snapshots of graphs and built
//!   spanners plus the log-structured incremental update path
//!   (WAL-buffered edits, dirty-region recluster compaction).
//!
//! # Example
//!
//! ```
//! use ultrasparse_spanners::graph::generators;
//!
//! let g = generators::connected_gnm(200, 600, 1);
//! assert_eq!(g.node_count(), 200);
//! ```

pub use spanner_baselines as baselines;
pub use spanner_graph as graph;
pub use spanner_lowerbound as lowerbound;
pub use spanner_netsim as netsim;
pub use spanner_oracle as oracle;
pub use spanner_serve as serve;
pub use spanner_store as store;
pub use ultrasparse as core;
