//! Conformance of the event-driven asynchronous executor (ISSUE PR 8).
//!
//! The synchronizer layer's promise is exactness: for every per-link delay
//! plan, the synchronized asynchronous run of each distributed
//! construction (skeleton, fibonacci, baswana_sen) must be **pair-exact**
//! with the round-synchronous run on connected graphs with n ≤ 64 — the
//! same spanner edge set and the same protocol-level metrics — under both
//! synchronizer variants, with the paper's size/stretch bounds (the ones
//! `conformance_constructions.rs` pins) re-checked on the async output.
//!
//! The metamorphic check at the bottom is the determinism half: permuting
//! the delay seed perturbs every link latency in the simulation, yet the
//! built spanner must never change.

use proptest::prelude::*;

use ultrasparse_spanners::baselines::baswana_sen::{self, BaswanaSenParams};
use ultrasparse_spanners::core::fibonacci::{self, FibonacciParams};
use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::core::Spanner;
use ultrasparse_spanners::graph::{generators, verify_stretch_exact, Graph, StretchBound};
use ultrasparse_spanners::netsim::{FaultPlan, RunMetrics, Synchronizer};

/// Strategy: a small connected random graph, n ≤ 64 (pair-exact
/// verification is O(n·m) per construction) — the same distribution
/// `conformance_constructions.rs` uses.
fn arb_small_graph() -> impl Strategy<Value = Graph> {
    (10usize..=64, 1.2f64..3.0, any::<u64>()).prop_map(|(n, density, seed)| {
        let m = (((n as f64) * density) as usize)
            .max(n - 1)
            .min(n * (n - 1) / 2);
        generators::connected_gnm(n, m, seed)
    })
}

/// A dense random delay plan: 40% of hops take up to 4 extra ticks.
fn delay_plan(dseed: u64) -> FaultPlan {
    FaultPlan::new(dseed).with_delays(0.4, 4)
}

/// Both synchronizer variants for `g`: the α-synchronizer, and the
/// skeleton synchronizer over `skeleton` (normally a previously built
/// spanner — the Bitton et al. free-lunch configuration).
fn variants(g: &Graph, skeleton: &Spanner) -> [Synchronizer; 2] {
    [
        Synchronizer::Alpha,
        Synchronizer::skeleton_of(g, skeleton.edges.iter()),
    ]
}

/// Asserts an async rebuild is pair-exact with the round-synchronous
/// reference: identical edge set, identical protocol-level metrics, and
/// honest async accounting on top.
fn assert_pair_exact(what: &str, reference: &Spanner, actual: &Spanner) {
    assert_eq!(
        reference.edges, actual.edges,
        "{what}: async spanner differs from round-synchronous build"
    );
    let sync_m = reference.metrics.expect("distributed build has metrics");
    let async_m = actual.metrics.expect("async build has metrics");
    assert_eq!(
        sync_m,
        async_m.protocol_only(),
        "{what}: protocol-level metrics must match"
    );
    assert_eq!(
        async_m.events,
        async_m.messages + async_m.sync_messages,
        "{what}: one event per arrival"
    );
    assert!(
        async_m.sim_time >= async_m.rounds as u64,
        "{what}: simulated clock advances at least one tick per round"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn skeleton_async_pair_exact_and_bounded(
        g in arb_small_graph(),
        seed in any::<u64>(),
        dseed in any::<u64>(),
    ) {
        let params = SkeletonParams::default();
        let reference = skeleton::distributed::build_distributed(&g, &params, seed)
            .expect("round-synchronous build");
        let delays = delay_plan(dseed);
        for sync in variants(&g, &reference) {
            let s = skeleton::distributed::build_distributed_async(
                &g, &params, seed, &delays, sync,
            ).expect("async build");
            assert_pair_exact("skeleton", &reference, &s);
            // Paper bounds on the async output, as in conformance_constructions.
            let bound = params.schedule(g.node_count()).distortion_bound as f64;
            prop_assert!(verify_stretch_exact(
                &g, &s.edges, StretchBound::multiplicative(bound)).is_ok());
            prop_assert!(
                (s.edges.len() as f64)
                    <= 2.0 * params.expected_size(g.node_count()) + 2.0 * g.node_count() as f64,
                "skeleton size {} vs expected {:.1}",
                s.edges.len(), params.expected_size(g.node_count())
            );
        }
    }

    #[test]
    fn fibonacci_async_pair_exact_and_bounded(
        g in arb_small_graph(),
        seed in any::<u64>(),
        dseed in any::<u64>(),
        order in 1u32..=2,
    ) {
        let n = g.node_count();
        let params = FibonacciParams::new(n, order, 0.5, 0).unwrap();
        let reference = fibonacci::distributed::build_distributed(&g, &params, seed)
            .expect("round-synchronous build");
        let delays = delay_plan(dseed);
        // The skeleton variant synchronizes over a separately built
        // skeleton spanner (spanning + connected on these graphs).
        let skel = skeleton::build_sequential(&g, &SkeletonParams::default(), seed ^ 0x51);
        for sync in variants(&g, &skel) {
            let s = fibonacci::distributed::build_distributed_async(
                &g, &params, seed, &delays, sync,
            ).expect("async build");
            assert_pair_exact("fibonacci", &reference, &s);
            prop_assert!(s.is_spanning(&g));
            let viol = s.check_envelope_exact(&g, |d| {
                fibonacci::analysis::distortion_envelope(params.order, params.ell, d as u64)
            });
            prop_assert!(viol.is_none(), "envelope violated: {:?}", viol);
        }
    }

    #[test]
    fn baswana_sen_async_pair_exact_and_bounded(
        g in arb_small_graph(),
        seed in any::<u64>(),
        dseed in any::<u64>(),
        k in 1u32..=4,
    ) {
        let params = BaswanaSenParams::new(k).unwrap();
        let reference = baswana_sen::build_distributed(&g, &params, seed)
            .expect("round-synchronous build");
        let delays = delay_plan(dseed);
        let skel = skeleton::build_sequential(&g, &SkeletonParams::default(), seed ^ 0x52);
        for sync in variants(&g, &skel) {
            let s = baswana_sen::build_distributed_async(&g, &params, seed, &delays, sync)
                .expect("async build");
            assert_pair_exact("baswana_sen", &reference, &s);
            let t = (2 * k - 1) as f64;
            prop_assert!(verify_stretch_exact(
                &g, &s.edges, StretchBound::multiplicative(t)).is_ok());
        }
    }

    // Metamorphic: the delay seed drives every link latency in the
    // simulation, yet the built spanner — and the protocol-level metrics —
    // must be invariant under permuting it. Only the async cost counters
    // (events, sync_messages, sim_time) may move.
    #[test]
    fn permuting_delay_seeds_never_changes_the_spanner(
        g in arb_small_graph(),
        seed in any::<u64>(),
        dseed in any::<u64>(),
    ) {
        let params = SkeletonParams::default();
        let mut previous: Option<(ultrasparse_spanners::graph::EdgeSet, RunMetrics)> = None;
        for perm in 0..3u64 {
            let s = skeleton::distributed::build_distributed_async(
                &g,
                &params,
                seed,
                &delay_plan(dseed.wrapping_add(perm)),
                Synchronizer::Alpha,
            ).expect("async build");
            let m = s.metrics.expect("async build has metrics").protocol_only();
            if let Some((edges, metrics)) = &previous {
                prop_assert!(*edges == s.edges, "spanner changed under delay seed permutation");
                prop_assert_eq!(*metrics, m);
            }
            previous = Some((s.edges, m));
        }
    }
}

/// Zero-delay sanity off the proptest path: the empty plan is the
/// unit-latency model, and the async drivers accept it.
#[test]
fn zero_delay_plan_is_unit_latency() {
    let g = generators::connected_gnm(32, 64, 5);
    let params = SkeletonParams::default();
    let reference = skeleton::distributed::build_distributed(&g, &params, 7).expect("sync build");
    let s = skeleton::distributed::build_distributed_async(
        &g,
        &params,
        7,
        &FaultPlan::default(),
        Synchronizer::Alpha,
    )
    .expect("async build");
    assert_pair_exact("skeleton/zero-delay", &reference, &s);
}
