//! Cross-crate integration: the Sect. 3 lower-bound machinery against the
//! actual spanner algorithms — the gadget really does defeat fast
//! algorithms, and the paper's structural claims hold on built instances.

use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::lowerbound::adversary::{
    measure_spine_distortion, predicted_spine_additive, select, Strategy,
};
use ultrasparse_spanners::lowerbound::gadget::droppable_edges;
use ultrasparse_spanners::lowerbound::{Gadget, GadgetParams};

#[test]
fn gadget_spine_cost_is_two_per_drop() {
    let g = Gadget::build(GadgetParams::new(4, 5, 20).unwrap());
    for keep in [0.0, 0.25, 0.75] {
        let trials = 6;
        let mut total = 0.0;
        for seed in 0..trials {
            let sel = select(
                &g,
                Strategy::GenerousCritical {
                    keep_fraction: keep,
                },
                seed,
            );
            let m = measure_spine_distortion(&g, &sel);
            assert!(sel.spanner.is_spanning(&g.graph));
            total += m.additive as f64;
        }
        let measured = total / trials as f64;
        let predicted = predicted_spine_additive(&g, keep);
        assert!(
            (measured - predicted).abs() <= 0.5 * predicted + 2.0,
            "keep={keep}: measured {measured} vs predicted {predicted}"
        );
    }
}

#[test]
fn only_block_edges_are_locally_droppable() {
    let g = Gadget::build(GadgetParams::new(3, 3, 4).unwrap());
    let droppable = droppable_edges(&g.graph, g.params.tau);
    let blocks: std::collections::HashSet<_> = g.block_edges.iter().copied().collect();
    assert_eq!(droppable.len(), blocks.len());
    for e in droppable {
        assert!(blocks.contains(&e), "chain edge {e} wrongly droppable");
    }
}

/// The paper's algorithms are *multiplicative* spanner algorithms — they
/// never claim additive guarantees, and on the gadget they indeed keep
/// the chains (distances along the spine survive) while pruning blocks.
#[test]
fn skeleton_on_gadget_behaves_multiplicatively() {
    // Dense blocks: the linear-size budget cannot keep them all.
    let g = Gadget::build(GadgetParams::new(2, 14, 8).unwrap());
    let params = SkeletonParams::default();
    let s = skeleton::build_sequential(&g.graph, &params, 5);
    assert!(s.is_spanning(&g.graph));
    // Stretch within the certified multiplicative bound even on the
    // adversarial topology.
    let bound = params.schedule(g.graph.node_count()).distortion_bound as f64;
    let r = s.stretch_sampled(&g.graph, 600, 3);
    assert!(r.max_multiplicative <= bound);
    // The lower bound in action: a linear-size spanner must drop a large
    // fraction of the block edges (and with them, typically, critical
    // edges) — so it cannot be purely additive with small beta.
    let kept_blocks = g
        .block_edges
        .iter()
        .filter(|e| s.edges.contains(**e))
        .count();
    assert!(
        kept_blocks < g.block_edges.len() / 2,
        "kept {kept_blocks} of {} block edges",
        g.block_edges.len()
    );
}

#[test]
fn theorem5_parameters_defeat_beta_targets() {
    for beta in [4u32, 10] {
        let params = GadgetParams::for_theorem5(20_000, 0.05, beta);
        let g = Gadget::build(params);
        let sel = select(&g, Strategy::GenerousCritical { keep_fraction: 0.5 }, 1);
        let trials = 8;
        let mut total = 0u64;
        for seed in 0..trials {
            let sel2 = select(&g, Strategy::GenerousCritical { keep_fraction: 0.5 }, seed);
            total += measure_spine_distortion(&g, &sel2).additive;
        }
        let avg = total as f64 / trials as f64;
        assert!(
            avg > beta as f64,
            "beta={beta}: measured {avg} should exceed the target"
        );
        drop(sel);
    }
}
