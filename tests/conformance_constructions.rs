//! Conformance suite for every spanner construction (ISSUE PR 3).
//!
//! On random connected graphs with n ≤ 64, each of the five constructions
//! (skeleton, fibonacci, baswana_sen, greedy, additive2) must satisfy its
//! paper-stated size and stretch bound — checked pair-exactly with
//! [`verify_stretch_exact`] — and the distance machinery is cross-checked
//! against the Thorup–Zwick oracle's `query` bracket.
//!
//! The fault-injected drivers (`build_distributed_faulted`) are hammered
//! with generated drop/delay/crash schedules: they must never panic — the
//! only legal outcomes are a certified spanner (re-verified here) or a
//! typed [`FaultError`] whose partial metrics survive. A metamorphic check
//! confirms that faults scoped to one component never perturb the spanner
//! built in the other.

use proptest::prelude::*;

use ultrasparse_spanners::baselines::baswana_sen::{self, BaswanaSenParams};
use ultrasparse_spanners::baselines::{additive2, greedy};
use ultrasparse_spanners::core::fibonacci::{self, FibonacciParams};
use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::core::{FaultError, Spanner};
use ultrasparse_spanners::graph::distance::Apsp;
use ultrasparse_spanners::graph::{generators, verify_stretch_exact, Graph, NodeId, StretchBound};
use ultrasparse_spanners::netsim::rng::splitmix64;
use ultrasparse_spanners::netsim::FaultPlan;
use ultrasparse_spanners::oracle::DistanceOracle;

/// Strategy: a small connected random graph, n ≤ 64 as the ISSUE demands
/// (pair-exact verification is O(n·m) per construction).
fn arb_small_graph() -> impl Strategy<Value = Graph> {
    (10usize..=64, 1.2f64..3.0, any::<u64>()).prop_map(|(n, density, seed)| {
        let m = (((n as f64) * density) as usize)
            .max(n - 1)
            .min(n * (n - 1) / 2);
        generators::connected_gnm(n, m, seed)
    })
}

/// A mixed fault schedule (drops, delays, duplicates, stutters, up to two
/// crash-stops) derived deterministically from `fseed`.
fn hostile_plan(fseed: u64, n: usize) -> FaultPlan {
    let mut s = fseed;
    let mut plan = FaultPlan::new(splitmix64(&mut s));
    let classes = splitmix64(&mut s);
    if classes & 1 != 0 {
        plan = plan.with_drops(0.02 + (splitmix64(&mut s) % 15) as f64 * 0.01);
    }
    if classes & 2 != 0 {
        let d = 1 + (splitmix64(&mut s) % 3) as u32;
        plan = plan.with_delays(0.02 + (splitmix64(&mut s) % 15) as f64 * 0.01, d);
    }
    if classes & 4 != 0 {
        plan = plan.with_duplicates(0.02 + (splitmix64(&mut s) % 10) as f64 * 0.01);
    }
    if classes & 8 != 0 {
        plan = plan.with_stutters(0.02 + (splitmix64(&mut s) % 10) as f64 * 0.01);
    }
    for _ in 0..splitmix64(&mut s) % 3 {
        let v = (splitmix64(&mut s) % n as u64) as u32;
        let r = 1 + (splitmix64(&mut s) % 6) as u32;
        plan = plan.with_crash(NodeId(v), r);
    }
    plan
}

/// Certify an `Ok` outcome of a faulted driver from scratch: the harness'
/// own certification is not trusted here, the test re-derives it.
fn assert_certified(g: &Graph, s: &Spanner, bound: StretchBound, what: &str) {
    assert!(s.is_spanning(g), "{what}: faulted Ok output must span");
    if let Err(viol) = verify_stretch_exact(g, &s.edges, bound) {
        panic!("{what}: faulted Ok output breaks its bound: {viol}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // --- paper-stated size and stretch bounds, pair-exact ------------------

    #[test]
    fn skeleton_meets_size_and_stretch(g in arb_small_graph(), seed in any::<u64>()) {
        let params = SkeletonParams::default();
        let n = g.node_count();
        let s = skeleton::build_sequential(&g, &params, seed);
        let bound = params.schedule(n).distortion_bound as f64;
        prop_assert!(verify_stretch_exact(&g, &s.edges, StretchBound::multiplicative(bound)).is_ok());
        // Linear size Dn/e + O(n log D): expected_size carries the Lemma 6
        // constants; allow 2x concentration slack plus an additive cushion
        // for the smallest instances.
        prop_assert!(
            (s.edges.len() as f64) <= 2.0 * params.expected_size(n) + 2.0 * n as f64,
            "skeleton size {} vs expected {:.1} on n={}",
            s.edges.len(), params.expected_size(n), n
        );
    }

    #[test]
    fn fibonacci_meets_envelope_and_size(g in arb_small_graph(), seed in any::<u64>(), order in 1u32..=2) {
        let n = g.node_count();
        let p = FibonacciParams::new(n, order, 0.5, 0).unwrap();
        let s = fibonacci::build_sequential(&g, &p, seed);
        prop_assert!(s.is_spanning(&g));
        let viol = s.check_envelope_exact(&g, |d| {
            fibonacci::analysis::distortion_envelope(p.order, p.ell, d as u64)
        });
        prop_assert!(viol.is_none(), "envelope violated: {:?}", viol);
        prop_assert!(
            (s.edges.len() as f64) <= 2.0 * p.expected_size() + 2.0 * n as f64,
            "fibonacci size {} vs expected {:.1}",
            s.edges.len(), p.expected_size()
        );
    }

    #[test]
    fn baswana_sen_meets_stretch_and_size(g in arb_small_graph(), seed in any::<u64>(), k in 1u32..=4) {
        let n = g.node_count() as f64;
        let params = BaswanaSenParams::new(k).unwrap();
        let s = baswana_sen::build_sequential(&g, &params, seed);
        let t = (2 * k - 1) as f64;
        prop_assert!(verify_stretch_exact(&g, &s.edges, StretchBound::multiplicative(t)).is_ok());
        // Expected size O(kn + log k · n^{1+1/k}); generous per-instance
        // slack (inputs are deterministic per proptest case, so this is a
        // regression pin rather than a tail-probability gamble).
        let budget = (k as f64) * n + 8.0 * n.powf(1.0 + 1.0 / k as f64);
        prop_assert!(
            (s.edges.len() as f64) <= budget,
            "baswana_sen size {} over budget {:.1} (k={})",
            s.edges.len(), budget, k
        );
    }

    #[test]
    fn greedy_meets_stretch_and_moore_size(g in arb_small_graph(), k in 1u32..=4) {
        let n = g.node_count() as f64;
        let s = greedy::build(&g, k);
        let t = (2 * k - 1) as f64;
        prop_assert!(verify_stretch_exact(&g, &s.edges, StretchBound::multiplicative(t)).is_ok());
        prop_assert!(greedy::has_greedy_girth(&g, &s, k));
        // Girth > 2k forces the deterministic Moore-type bound n + n^{1+1/k}.
        prop_assert!(
            (s.edges.len() as f64) <= n + n.powf(1.0 + 1.0 / k as f64) + 1.0,
            "greedy size {} exceeds Moore bound (k={})",
            s.edges.len(), k
        );
    }

    #[test]
    fn additive2_meets_bound_and_size(g in arb_small_graph(), seed in any::<u64>()) {
        let n = g.node_count() as f64;
        let s = additive2::build(&g, seed);
        prop_assert!(verify_stretch_exact(&g, &s.edges, StretchBound::additive(2)).is_ok());
        // O(n^{3/2}) edges; the clustering argument gives ~2 n^{3/2} + n.
        prop_assert!(
            (s.edges.len() as f64) <= 4.0 * n.powf(1.5) + 2.0 * n,
            "additive2 size {} exceeds O(n^1.5) budget",
            s.edges.len()
        );
    }

    // --- Thorup–Zwick oracle cross-check ----------------------------------

    #[test]
    fn oracle_query_brackets_exact_distances(g in arb_small_graph(), seed in any::<u64>(), k in 1u32..=3) {
        // The same BFS machinery that backs verify_stretch_exact must agree
        // with the oracle: exact ≤ query ≤ (2k−1)·exact on every pair.
        let oracle = DistanceOracle::build(&g, k, seed);
        let apsp = Apsp::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if v <= u {
                    continue;
                }
                let exact = apsp.dist(u, v);
                if exact == u32::MAX {
                    continue;
                }
                let q = oracle.query(u, v) as u64;
                prop_assert!(q >= exact as u64, "query {} under exact {}", q, exact);
                prop_assert!(
                    q <= (2 * k as u64 - 1) * exact as u64,
                    "query {} over {}x exact {}", q, 2 * k - 1, exact
                );
            }
        }
    }

    #[test]
    fn spanner_distances_respect_oracle_guarantee(g in arb_small_graph(), seed in any::<u64>(), k in 2u32..=3) {
        // Cross-check construction output against the oracle on the same k:
        // a certified (2k−1)-spanner's distances must sit inside the same
        // bracket the oracle promises, tying the two verifiers together.
        let params = BaswanaSenParams::new(k).unwrap();
        let s = baswana_sen::build_sequential(&g, &params, seed);
        let oracle = DistanceOracle::build(&g, k, seed ^ 0x9E37);
        let apsp = Apsp::new(&g);
        let sub = s.edges.to_graph(&g);
        let span_apsp = Apsp::new(&sub);
        let t = 2 * k as u64 - 1;
        for u in g.nodes() {
            for v in g.nodes() {
                if v <= u {
                    continue;
                }
                let exact = apsp.dist(u, v) as u64;
                let in_spanner = span_apsp.dist(u, v) as u64;
                let q = oracle.query(u, v) as u64;
                prop_assert!(in_spanner <= t * exact);
                prop_assert!(q <= t * exact);
                // Both estimators dominate the true distance.
                prop_assert!(in_spanner >= exact && q >= exact);
            }
        }
    }

    // --- crash-stop conformance of the faulted drivers --------------------

    #[test]
    fn faulted_drivers_never_panic_or_lie(g in arb_small_graph(), seed in any::<u64>(), fseed in any::<u64>()) {
        let n = g.node_count();
        let plan = hostile_plan(fseed, n);

        let sk_params = SkeletonParams::default();
        let sk_bound = sk_params.schedule(n).distortion_bound as f64;
        match skeleton::distributed::build_distributed_faulted(&g, &sk_params, seed, &plan) {
            Ok(s) => assert_certified(&g, &s, StretchBound::multiplicative(sk_bound), "skeleton"),
            Err(e) => prop_assert!(e.metrics().rounds < u32::MAX, "metrics retained: {e}"),
        }

        let fb_params = FibonacciParams::new(n, 1, 0.5, 0).unwrap();
        match fibonacci::distributed::build_distributed_faulted(&g, &fb_params, seed, &plan) {
            Ok(s) => {
                prop_assert!(s.is_spanning(&g), "fibonacci: faulted Ok output must span");
                let viol = s.check_envelope_exact(&g, |d| {
                    fibonacci::analysis::distortion_envelope(fb_params.order, fb_params.ell, d as u64)
                });
                prop_assert!(viol.is_none(), "fibonacci faulted Ok breaks envelope: {:?}", viol);
            }
            Err(e) => prop_assert!(e.metrics().rounds < u32::MAX, "metrics retained: {e}"),
        }

        let bs_params = BaswanaSenParams::new(2).unwrap();
        match baswana_sen::build_distributed_faulted(&g, &bs_params, seed, &plan) {
            Ok(s) => assert_certified(&g, &s, StretchBound::multiplicative(3.0), "baswana_sen"),
            Err(e) => prop_assert!(e.metrics().rounds < u32::MAX, "metrics retained: {e}"),
        }
    }

    #[test]
    fn empty_plan_matches_unfaulted_build(g in arb_small_graph(), seed in any::<u64>()) {
        // An inactive FaultPlan must be a perfect no-op: the faulted driver
        // returns Ok with exactly the edges of the plain distributed build.
        let inert = FaultPlan::new(seed ^ 0xF0F0);
        let params = BaswanaSenParams::new(2).unwrap();
        let plain = baswana_sen::build_distributed(&g, &params, seed).expect("unfaulted build");
        let faulted = baswana_sen::build_distributed_faulted(&g, &params, seed, &inert)
            .expect("inert plan must succeed");
        prop_assert_eq!(plain.edges.iter().collect::<Vec<_>>(),
                        faulted.edges.iter().collect::<Vec<_>>());
    }
}

/// Metamorphic drop-invariance at the construction level: a hostile plan
/// scoped entirely to one clique of a two-component graph must leave the
/// spanner edges chosen inside the *other* clique bit-identical to the
/// fault-free run.
#[test]
fn scoped_faults_do_not_perturb_other_component() {
    let k = 10u32;
    let mut edges = Vec::new();
    for base in [0, k] {
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((base + a, base + b));
            }
        }
    }
    let g = Graph::from_edges(2 * k as usize, edges.iter().copied());
    let params = BaswanaSenParams::new(2).unwrap();
    let seed = 424_242;

    let clean = baswana_sen::build_distributed(&g, &params, seed).expect("clean build");
    let hostile = FaultPlan::new(77)
        .with_drops(0.5)
        .with_delays(0.4, 2)
        .with_crash(NodeId(k + 3), 1)
        .scoped_to((k..2 * k).map(NodeId));
    let outcome = baswana_sen::build_distributed_faulted(&g, &params, seed, &hostile);

    let component_a = |s: &Spanner| -> Vec<_> {
        s.edges
            .iter()
            .filter(|&e| {
                let (u, v) = g.endpoints(e);
                u.0 < k && v.0 < k
            })
            .collect()
    };
    match outcome {
        Ok(s) => {
            assert_eq!(
                component_a(&clean),
                component_a(&s),
                "faults scoped to component B changed component A's spanner"
            );
        }
        // A typed error is conformant too (the crash may disconnect B's
        // run), but it must carry metrics showing injected faults.
        Err(e) => assert!(!e.metrics().faults.is_empty(), "fault counters lost: {e}"),
    }
}

/// Crash-at-round-0 of every node is the most hostile schedule possible:
/// all three drivers must return a typed error, never panic.
#[test]
fn total_crash_is_a_typed_error_everywhere() {
    let g = generators::connected_gnm(24, 40, 5);
    let mut plan = FaultPlan::new(9);
    for v in 0..24 {
        plan = plan.with_crash(NodeId(v), 0);
    }
    let sk =
        skeleton::distributed::build_distributed_faulted(&g, &SkeletonParams::default(), 3, &plan);
    let fb = fibonacci::distributed::build_distributed_faulted(
        &g,
        &FibonacciParams::new(24, 1, 0.5, 0).unwrap(),
        3,
        &plan,
    );
    let bs =
        baswana_sen::build_distributed_faulted(&g, &BaswanaSenParams::new(2).unwrap(), 3, &plan);
    for (name, r) in [("skeleton", sk), ("fibonacci", fb), ("baswana_sen", bs)] {
        let err = r.expect_err(name);
        assert!(
            matches!(err, FaultError::Run { .. } | FaultError::Uncertified { .. }),
            "{name}: {err}"
        );
        assert_eq!(err.metrics().faults.crashes, 24, "{name} crash counter");
    }
}
