//! Cross-crate integration: the skeleton pipeline end to end —
//! generators → schedule → sequential & distributed construction →
//! verification, all through the facade crate.

use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::core::Spanner;
use ultrasparse_spanners::graph::{generators, Graph};

fn check(g: &Graph, s: &Spanner, params: &SkeletonParams, label: &str) {
    assert!(s.is_spanning(g), "{label}: not spanning");
    let bound = params.schedule(g.node_count().max(2)).distortion_bound as f64;
    let r = s.stretch_sampled(g, 800, 3);
    assert_eq!(r.disconnected, 0, "{label}");
    assert!(
        r.max_multiplicative <= bound,
        "{label}: stretch {} exceeds certified {bound}",
        r.max_multiplicative
    );
}

#[test]
fn skeleton_across_graph_families() {
    let params = SkeletonParams::default();
    let graphs: Vec<(&str, Graph)> = vec![
        ("gnm", generators::connected_gnm(800, 6_000, 1)),
        ("grid", generators::grid(25, 30)),
        ("torus", generators::torus(20, 25)),
        ("hypercube", generators::hypercube(9)),
        (
            "preferential",
            generators::preferential_attachment(700, 4, 2),
        ),
        ("caveman", generators::caveman(30, 15, 20, 3)),
        ("cycle", generators::cycle(500)),
    ];
    for (label, g) in &graphs {
        let seq = skeleton::build_sequential(g, &params, 11);
        check(g, &seq, &params, &format!("seq/{label}"));
        let dist = skeleton::distributed::build_distributed(g, &params, 11).expect("run");
        check(g, &dist, &params, &format!("dist/{label}"));
    }
}

#[test]
fn sequential_and_distributed_sizes_track_each_other() {
    let params = SkeletonParams::default();
    for seed in 0..4u64 {
        let g = generators::connected_gnm(600, 4_800, seed);
        let a = skeleton::build_sequential(&g, &params, seed).len() as f64;
        let b = skeleton::distributed::build_distributed(&g, &params, seed)
            .expect("run")
            .len() as f64;
        assert!(
            (a - b).abs() <= 0.5 * a.max(b),
            "seed {seed}: sizes diverge ({a} vs {b})"
        );
    }
}

#[test]
fn density_parameter_monotone_in_size() {
    let g = generators::connected_gnm(1_200, 20_000, 9);
    let mut last = 0usize;
    for d in [4.0, 8.0, 16.0, 32.0] {
        let params = SkeletonParams::new(d, 0.5).unwrap();
        let s = skeleton::build_sequential(&g, &params, 5);
        assert!(
            s.len() + 400 >= last,
            "size should grow (noisily) with D: {} after {last} at D={d}",
            s.len()
        );
        last = s.len();
    }
}

#[test]
fn skeleton_on_disconnected_components() {
    // Two components of very different sizes and densities.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..200u32 {
        for j in (i + 1)..200 {
            if (i * 7919 + j * 104729) % 97 < 8 {
                edges.push((i, j));
            }
        }
    }
    edges.push((200, 201)); // tiny second component
    edges.push((201, 202));
    let g = Graph::from_edges(203, edges);
    let params = SkeletonParams::default();
    let s = skeleton::build_sequential(&g, &params, 1);
    assert!(s.is_spanning(&g));
    let d = skeleton::distributed::build_distributed(&g, &params, 1).expect("run");
    assert!(d.is_spanning(&g));
}
