//! Cross-crate integration: Fibonacci spanners end to end, including the
//! analytical envelope (Theorem 7) and the sequential ≡ distributed
//! equivalence under unbounded messages.

use ultrasparse_spanners::core::fibonacci::{self, analysis::distortion_envelope, FibonacciParams};
use ultrasparse_spanners::graph::{generators, Graph};

fn envelope_ok(g: &Graph, p: &FibonacciParams, s: &ultrasparse_spanners::core::Spanner) {
    let viol = s.check_envelope_sampled(g, 1_500, 7, |d| {
        distortion_envelope(p.order, p.ell, d as u64)
    });
    assert!(viol.is_none(), "envelope violated: {viol:?}");
}

#[test]
fn fibonacci_across_graph_families() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("gnm", generators::connected_gnm(700, 4_000, 1)),
        ("grid", generators::grid(22, 25)),
        ("caveman", generators::caveman(40, 12, 15, 3)),
        (
            "preferential",
            generators::preferential_attachment(600, 5, 4),
        ),
    ];
    for (label, g) in &graphs {
        for order in 1..=2u32 {
            let p = FibonacciParams::new(g.node_count(), order, 0.5, 0).unwrap();
            let s = fibonacci::build_sequential(g, &p, 13);
            assert!(s.is_spanning(g), "{label} o={order}");
            envelope_ok(g, &p, &s);
        }
    }
}

#[test]
fn distributed_equals_sequential_without_budget() {
    for (seed, g) in [
        (1u64, generators::connected_gnm(350, 1_400, 5)),
        (2, generators::grid(15, 18)),
    ] {
        let p = FibonacciParams::new(g.node_count(), 2, 0.5, 0).unwrap();
        let seq = fibonacci::build_sequential(&g, &p, seed);
        let dist = fibonacci::distributed::build_distributed(&g, &p, seed).expect("run");
        assert_eq!(
            seq.edges.iter().collect::<Vec<_>>(),
            dist.edges.iter().collect::<Vec<_>>(),
            "seed {seed}"
        );
    }
}

#[test]
fn bounded_messages_stay_correct() {
    let g = generators::connected_gnm(500, 3_000, 8);
    for t in [2u32, 4] {
        let p = FibonacciParams::new(500, 2, 0.5, t).unwrap();
        let s = fibonacci::distributed::build_distributed(&g, &p, 3).expect("run");
        assert!(s.is_spanning(&g), "t={t}");
        envelope_ok(&g, &p, &s);
        let m = s.metrics.unwrap();
        let cap = fibonacci::distributed::theorem8_budget(500, t)
            .limit()
            .unwrap();
        assert!(m.max_message_words <= cap, "t={t}");
    }
}

#[test]
fn epsilon_controls_long_range_stretch() {
    // Smaller epsilon → larger ell → better long-range guarantee; check
    // the guarantee function itself is monotone and the spanner follows.
    let g = generators::caveman(80, 10, 0, 2);
    let n = g.node_count();
    let tight = FibonacciParams::new(n, 2, 0.25, 0).unwrap();
    let loose = FibonacciParams::new(n, 2, 1.0, 0).unwrap();
    assert!(tight.ell > loose.ell);
    let st = fibonacci::build_sequential(&g, &tight, 4);
    let sl = fibonacci::build_sequential(&g, &loose, 4);
    assert!(st.is_spanning(&g) && sl.is_spanning(&g));
    // The tighter parameterization keeps at least as many edges.
    assert!(st.len() >= sl.len());
}
