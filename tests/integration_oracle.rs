//! Cross-crate integration: the application layer (distance oracles and
//! compact routing) composed with the spanner machinery — the paper's
//! conclusion claims these are where spanners matter; here they are built
//! on the same substrate and verified against the same exact-distance
//! oracles.

use ultrasparse_spanners::graph::distance::{Apsp, UNREACHABLE};
use ultrasparse_spanners::graph::traversal::subgraph_distances;
use ultrasparse_spanners::graph::{generators, verify_stretch_exact, NodeId, StretchBound};
use ultrasparse_spanners::oracle::{DistanceOracle, RoutingScheme};

#[test]
fn oracle_and_spanner_agree_on_guarantee() {
    let g = generators::connected_gnm(300, 2_400, 5);
    for k in [2u32, 3] {
        let oracle = DistanceOracle::build(&g, k, 9);
        let spanner = oracle.to_spanner();
        assert!(spanner.is_spanning(&g));
        // The induced spanner respects the (2k-1) guarantee on every pair.
        verify_stretch_exact(
            &g,
            &spanner.edges,
            StretchBound::multiplicative((2 * k - 1) as f64),
        )
        .unwrap_or_else(|viol| panic!("k={k}: {viol}"));
        // The oracle's estimate is realizable inside its induced spanner:
        // query(u,v) is a distance of an actual path, so the spanner's
        // exact distance is at most the query estimate, and both respect
        // the (2k-1) guarantee.
        let apsp = Apsp::new(&g);
        let stretch = (2 * k - 1) as u64;
        for &(a, b) in &[(0u32, 200), (17, 255), (40, 111), (3, 299)] {
            let (u, v) = (NodeId(a), NodeId(b));
            let exact = apsp.dist(u, v) as u64;
            let est = oracle.query(u, v) as u64;
            let in_spanner =
                subgraph_distances(&g, &spanner.edges, u)[v.index()].expect("spanner spans") as u64;
            assert!(est <= stretch * exact, "k={k}: oracle estimate");
            assert!(in_spanner <= est, "k={k}: estimate realizable in spanner");
            assert!(in_spanner >= exact);
        }
    }
}

#[test]
fn routing_stretch_tracks_oracle_stretch() {
    // Both the k=2 oracle and the landmark routing scheme use the same
    // truncated clusters; their realized stretches on the same pairs are
    // both small and the routes are realizable paths.
    let g = generators::connected_gnm(250, 1_800, 7);
    let oracle = DistanceOracle::build(&g, 2, 3);
    let scheme = RoutingScheme::build(&g, 3);
    let apsp = Apsp::new(&g);
    let mut worst_route = 1.0f64;
    let mut worst_query = 1.0f64;
    for a in (0..250u32).step_by(11) {
        for b in (1..250u32).step_by(13) {
            if a == b {
                continue;
            }
            let (u, v) = (NodeId(a), NodeId(b));
            let exact = apsp.dist(u, v);
            if exact == UNREACHABLE {
                continue;
            }
            let route = scheme.route(u, scheme.address(v)).expect("deliverable");
            worst_route = worst_route.max((route.len() - 1) as f64 / exact as f64);
            worst_query = worst_query.max(oracle.query(u, v) as f64 / exact as f64);
        }
    }
    assert!(worst_query <= 3.0 + 1e-9, "oracle stretch {worst_query}");
    // Routing pays at most + 2 δ(v, L) — small on this dense workload.
    assert!(worst_route <= 5.0, "route stretch {worst_route}");
}

#[test]
fn applications_work_on_sparse_skeletons() {
    // Build the paper's skeleton first, then run the applications ON the
    // skeleton — the "sparse substitute for the communications network"
    // story of the introduction, end to end.
    let g = generators::connected_gnm(400, 6_000, 11);
    let params = ultrasparse_spanners::core::skeleton::SkeletonParams::default();
    let skeleton = ultrasparse_spanners::core::skeleton::build_sequential(&g, &params, 5);
    let sub = skeleton.edges.to_graph(&g);

    // Oracle over the skeleton: guarantees hold w.r.t. skeleton distances.
    let oracle = DistanceOracle::build(&sub, 2, 3);
    let apsp = Apsp::new(&sub);
    for &(a, b) in &[(0u32, 399), (10, 200), (77, 310)] {
        let (u, v) = (NodeId(a), NodeId(b));
        let exact = apsp.dist(u, v) as u64;
        let est = oracle.query(u, v) as u64;
        assert!(est <= 3 * exact);
        assert!(est >= exact);
    }
    // Routing over the skeleton delivers everywhere.
    let scheme = RoutingScheme::build(&sub, 9);
    for v in [NodeId(1), NodeId(200), NodeId(399)] {
        assert!(scheme.route(NodeId(0), scheme.address(v)).is_some());
    }
}
