//! Cross-crate integration: all baseline algorithms honour their
//! guarantees on shared workloads, and the Fig. 1 ordering relations hold
//! (who is sparser, who stretches less).

use ultrasparse_spanners::baselines::{additive2, baswana_sen, bfs_skeleton, greedy};
use ultrasparse_spanners::graph::{generators, verify_stretch_exact, StretchBound};

#[test]
fn all_baselines_guarantee_matrix() {
    let g = generators::connected_gnm(400, 4_000, 3);

    let forest = bfs_skeleton::build(&g);
    assert!(forest.is_spanning(&g));
    assert_eq!(forest.len(), g.node_count() - 1);

    for k in [2u32, 3] {
        let p = baswana_sen::BaswanaSenParams::new(k).unwrap();
        for s in [
            baswana_sen::build_sequential(&g, &p, 5),
            baswana_sen::build_distributed(&g, &p, 5).expect("run"),
        ] {
            assert!(s.is_spanning(&g));
            verify_stretch_exact(
                &g,
                &s.edges,
                StretchBound::multiplicative((2 * k - 1) as f64),
            )
            .unwrap_or_else(|viol| panic!("BS k={k}: {viol}"));
        }
    }

    for k in [2u32, 3] {
        let s = greedy::build(&g, k);
        assert!(s.is_spanning(&g));
        verify_stretch_exact(
            &g,
            &s.edges,
            StretchBound::multiplicative((2 * k - 1) as f64),
        )
        .unwrap_or_else(|viol| panic!("greedy k={k}: {viol}"));
        assert!(greedy::has_greedy_girth(&g, &s, k));
    }

    let add2 = additive2::build(&g, 7);
    assert!(add2.is_spanning(&g));
    verify_stretch_exact(&g, &add2.edges, StretchBound::additive(2))
        .unwrap_or_else(|viol| panic!("additive2: {viol}"));
}

#[test]
fn fig1_ordering_relations() {
    // Dense workload where the asymptotic rankings show.
    let g = generators::connected_gnm(1_500, 30_000, 11);

    let forest = bfs_skeleton::build(&g);
    let greedy_log = greedy::linear_size_skeleton(&g);
    let bs2 = baswana_sen::build_sequential(&g, &baswana_sen::BaswanaSenParams::new(2).unwrap(), 5);
    let skel = ultrasparse_spanners::core::skeleton::build_sequential(
        &g,
        &ultrasparse_spanners::core::skeleton::SkeletonParams::default(),
        5,
    );

    // Size ordering: forest <= greedy-log ~ skeleton << BS k=2 << m.
    assert!(forest.len() <= greedy_log.len());
    assert!(skel.len() < bs2.len());
    assert!(bs2.len() < g.edge_count());
    // Linear-size group really is linear.
    assert!(greedy_log.len() < 3 * g.node_count());
    assert!(skel.len() < 6 * g.node_count());

    // Stretch ordering (sampled): the denser BS k=2 spanner beats the
    // linear-size skeleton. (The BFS forest's *mean* stretch can actually
    // be decent on low-diameter inputs — its failure mode is the worst
    // case, bounded only by the diameter.)
    let rb = bs2.stretch_sampled(&g, 600, 1);
    let rs = skel.stretch_sampled(&g, 600, 1);
    assert!(rb.max_multiplicative <= 3.0);
    assert!(rb.max_multiplicative <= rs.max_multiplicative);
}

#[test]
fn distributed_baselines_round_counts() {
    let g = generators::connected_gnm(500, 2_500, 7);
    let p = baswana_sen::BaswanaSenParams::new(4).unwrap();
    let s = baswana_sen::build_distributed(&g, &p, 3).expect("run");
    let m = s.metrics.unwrap();
    // O(k) rounds with unit-ish messages — the Fig. 1 row for [10].
    assert!(m.rounds <= p.k + 2);
    assert_eq!(m.max_message_words, 2);

    let f = bfs_skeleton::build_distributed(&g, 3, 4_000).expect("run");
    let fm = f.metrics.unwrap();
    assert!(fm.rounds < 4_000);
}
