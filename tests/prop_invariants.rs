//! Property-based tests (proptest) on the core invariants, across random
//! graphs and parameters:
//!
//! * every construction yields a subgraph that preserves connectivity,
//! * measured stretch never exceeds the construction's certificate,
//! * spanner distances never undercut host distances (sanity of the
//!   measurement machinery itself),
//! * the tower sequence and Fibonacci identities of Lemmas 1 and 8,
//! * gadget structure (counts, spine distance) for arbitrary parameters.

use proptest::prelude::*;

use ultrasparse_spanners::baselines::baswana_sen;
use ultrasparse_spanners::core::fibonacci::{self, FibonacciParams};
use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::graph::{generators, Graph};
use ultrasparse_spanners::lowerbound::{Gadget, GadgetParams};

/// Strategy: a connected random graph with 10..=160 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (10usize..=160, 1.2f64..4.0, any::<u64>()).prop_map(|(n, density, seed)| {
        let m = ((n as f64) * density) as usize;
        generators::connected_gnm(n, m.max(n - 1), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skeleton_always_spans_within_certificate(g in arb_graph(), seed in any::<u64>()) {
        let params = SkeletonParams::default();
        let s = skeleton::build_sequential(&g, &params, seed);
        prop_assert!(s.is_spanning(&g));
        let bound = params.schedule(g.node_count()).distortion_bound as f64;
        let r = s.stretch_exact(&g);
        prop_assert_eq!(r.disconnected, 0);
        prop_assert!(r.max_multiplicative <= bound);
    }

    #[test]
    fn distributed_skeleton_always_spans(g in arb_graph(), seed in any::<u64>()) {
        let params = SkeletonParams::default();
        let s = skeleton::distributed::build_distributed(&g, &params, seed).expect("run");
        prop_assert!(s.is_spanning(&g));
    }

    #[test]
    fn fibonacci_envelope_always_holds(g in arb_graph(), seed in any::<u64>(), order in 1u32..=2) {
        let p = FibonacciParams::new(g.node_count(), order, 0.5, 0).expect("params");
        let s = fibonacci::build_sequential(&g, &p, seed);
        prop_assert!(s.is_spanning(&g));
        let viol = s.check_envelope_exact(&g, |d| {
            fibonacci::analysis::distortion_envelope(p.order, p.ell, d as u64)
        });
        prop_assert!(viol.is_none(), "violation: {:?}", viol);
    }

    #[test]
    fn baswana_sen_always_within_stretch(g in arb_graph(), seed in any::<u64>(), k in 1u32..=4) {
        let p = baswana_sen::BaswanaSenParams::new(k).expect("params");
        let s = baswana_sen::build_sequential(&g, &p, seed);
        prop_assert!(s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        prop_assert!(r.satisfies_multiplicative((2 * k - 1) as f64));
    }

    #[test]
    fn spanner_distances_never_undercut(g in arb_graph(), seed in any::<u64>()) {
        // The verification machinery itself: a subgraph can only increase
        // distances; StretchReport debug-asserts this, and here we check
        // the public aggregate is >= 1.
        let params = SkeletonParams::default();
        let s = skeleton::build_sequential(&g, &params, seed);
        let r = s.stretch_exact(&g);
        prop_assert!(r.max_multiplicative >= 1.0);
        prop_assert!(r.mean_multiplicative >= 1.0);
    }

    #[test]
    fn tower_sequence_lemma1(d in 4u32..=16) {
        let s = ultrasparse_spanners::core::seq::tower_seq(d as f64, 1e300, 4);
        // s_2 = D^D and log s_3 = s_2 log s_2 (Lemma 1(2)).
        prop_assert!((s[2] - (d as f64).powi(d as i32)).abs() < 1e-6 * s[2]);
        // Lemma 1(3): s_i >= 2^{i+1} s_1...s_{i-1}.
        let mut prod = 1.0f64;
        for (i, &si) in s.iter().enumerate().take(4).skip(1) {
            prop_assert!(si >= 2f64.powi(i as i32 + 1) * prod * 0.999);
            prod *= si;
        }
    }

    #[test]
    fn fibonacci_probability_system_closes(n in 100usize..100_000, o in 1u32..=5) {
        let o = o.min(FibonacciParams::max_order(n));
        let p = FibonacciParams::new(n, o, 0.5, 0).expect("params");
        // Lemma 8: the recurrences force q_{o+1} ~ 1/n; our construction
        // clamps at 1/n, so the last ratio must not exceed n.
        let last = p.q.last().copied().unwrap_or(1.0);
        prop_assert!(last >= 1.0 / n as f64 - 1e-12);
        // Monotone non-increasing.
        let mut prev = 1.0f64;
        for &q in &p.q {
            prop_assert!(q <= prev + 1e-12);
            prev = q;
        }
    }

    #[test]
    fn gadget_structure(tau in 0u32..=6, lambda in 2u32..=8, kappa in 1u32..=10) {
        let g = Gadget::build(GadgetParams::new(tau, lambda, kappa).expect("params"));
        prop_assert!(g.graph.node_count() <
            (kappa as usize + 1) * lambda as usize * (tau as usize + 6));
        prop_assert_eq!(g.critical_edges.len(), kappa as usize);
        prop_assert_eq!(
            g.block_edges.len(),
            (kappa * lambda * lambda) as usize
        );
        if kappa >= 2 {
            let (u, v) = g.spine_pair();
            let d = ultrasparse_spanners::graph::traversal::bfs_distances(&g.graph, u)
                [v.index()].expect("connected");
            prop_assert_eq!(d as u64, g.spine_distance());
        }
    }

    #[test]
    fn edgeset_roundtrip(g in arb_graph(), mask in any::<u64>()) {
        use ultrasparse_spanners::graph::{EdgeSet, EdgeId};
        let mut s = EdgeSet::new(&g);
        let mut expect = Vec::new();
        for (e, _, _) in g.edges() {
            if (mask >> (e.0 % 64)) & 1 == 1 {
                s.insert(e);
                expect.push(e);
            }
        }
        let got: Vec<EdgeId> = s.iter().collect();
        prop_assert_eq!(got, expect);
        let h = s.to_graph(&g);
        prop_assert_eq!(h.edge_count(), s.len());
    }
}
