//! Sequence-related randomness: shuffling and element choice.

use crate::distributions::uniform::uniform_u64;
use crate::RngCore;

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}
