//! PRNG implementations.

use crate::{splitmix64, RngCore, SeedableRng};

/// A small, fast PRNG: xoshiro256++ (Blackman–Vigna), the algorithm family
/// the real `rand::rngs::SmallRng` uses on 64-bit targets.
///
/// Not cryptographically secure; statistically solid for simulation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        // xoshiro requires a nonzero state; unreachable from SplitMix64 in
        // practice, but cheap to guarantee.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

/// Alias so code written against `StdRng` also works; same generator.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_streams() {
        let xs: Vec<u64> = (0..64)
            .map(|seed| SmallRng::seed_from_u64(seed).next_u64())
            .collect();
        let mut dedup = xs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), xs.len());
    }

    #[test]
    fn next_u32_is_high_half() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
