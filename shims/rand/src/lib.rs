//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` crate cannot be fetched. This shim reimplements, API- and
//! trait-shape-compatible, exactly what the workspace consumes:
//!
//! * [`rngs::SmallRng`] — a small fast PRNG (xoshiro256++, the same algorithm
//!   family the real `SmallRng` uses on 64-bit targets), seeded via SplitMix64,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over the standard integer and
//!   float types,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are deterministic and of good statistical quality, but are NOT
//! bit-compatible with the real `rand` crate: all seeded results in this
//! repository are defined relative to this implementation.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// SplitMix64 step — used to expand a `u64` seed into PRNG state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derives a full PRNG state from a single `u64` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full range for integers, `[0, 1)`
    /// for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&z));
            let w: u64 = rng.gen_range(0..1);
            assert_eq!(w, 0);
            let s: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Must not overflow or hang.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
