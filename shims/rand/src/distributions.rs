//! Value distributions: the `Standard` distribution and uniform ranges.

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: full range for integers, `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, shaped like `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Unbiased uniform integer in `[0, span)` via Lemire's method;
    /// `span == 0` means the full 2^64 range.
    #[inline]
    pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        if span == 0 {
            return rng.next_u64();
        }
        // Accept x iff the low half of x*span clears 2^64 mod span.
        let zone = span.wrapping_neg() % span;
        loop {
            let m = (rng.next_u64() as u128) * (span as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_sample_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    low + uniform_u64(rng, (high - low) as u64) as $t
                }
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    // Wraps to 0 (= full range) only for the full u64 span.
                    let span = (high - low) as u64;
                    low + uniform_u64(rng, span.wrapping_add(1)) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let span = (high as $u).wrapping_sub(low as $u) as u64;
                    low.wrapping_add(uniform_u64(rng, span) as $t)
                }
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let span = ((high as $u).wrapping_sub(low as $u) as u64).wrapping_add(1);
                    low.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )*};
    }

    impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let v = low + (high - low) * unit;
                    // Guard the rounding edge so the half-open contract holds.
                    if v < high { v } else { low }
                }
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    (low + (high - low) * unit).clamp(low, high)
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);

    /// Range shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws a uniform sample from this range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_inclusive(rng, low, high)
        }
    }
}
