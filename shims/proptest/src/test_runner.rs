//! Test configuration and the deterministic per-case RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count to actually run: the `PROPTEST_CASES` environment
    /// variable overrides `self.cases` when set — the shim's analogue of
    /// real proptest's env override, used by CI to pin the fault smoke
    /// job's depth. A non-numeric value is ignored.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// The RNG driving input generation, derived from (test name, case index) so
/// every run of the suite replays the identical cases.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// The RNG for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 1 | 1)))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Access to the underlying RNG.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}
