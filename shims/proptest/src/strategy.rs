//! Input-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::distributions::uniform::SampleUniform;
use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: `new_value` draws one value.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy generating `f(value)` for values of this strategy.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// A strategy always yielding a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.inner().gen_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.inner().gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, G);
