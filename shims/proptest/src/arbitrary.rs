//! `any::<T>()` — full-range strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)`; full-bit-pattern floats (NaN/inf) are not useful
    /// for the numeric properties this workspace tests.
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for an arbitrary value of `T`; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}
