//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses.
//!
//! The build environment has no network access, so the real `proptest` crate
//! cannot be fetched. This shim provides API-compatible randomized property
//! testing without shrinking:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples,
//! * [`arbitrary::any`] for the primitive types,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Each test case draws its inputs from a deterministic RNG derived from the
//! test name and case index, so failures are reproducible run-to-run. On
//! failure the panic message includes the case index; there is no shrinking —
//! minimal counterexamples are traded for zero dependencies.

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)` runs
/// `config.cases` times with inputs drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.resolved_cases() {
                let mut runner_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $( let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut runner_rng); )+
                let run = || $body;
                run();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 0u32..10, b in 5usize..=9, x in 0.5f64..2.0) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn tuples_and_map(pair in (1u32..5, 10u64..=20).prop_map(|(a, b)| (a as u64) + b) ) {
            prop_assert!((11..=24).contains(&pair));
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // Astronomically unlikely to collide; mostly checks plumbing.
            prop_assert_ne!(x, y);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = 0u64..=u64::MAX;
        assert_eq!(
            Strategy::new_value(&s, &mut a),
            Strategy::new_value(&s, &mut b)
        );
    }
}
