//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This shim keeps the bench files compiling and
//! produces honest wall-clock measurements: each benchmark is warmed up,
//! calibrated to the group's measurement time, run, and reported as
//! `ns/iter` (median over samples) on stdout. No statistical analysis, HTML
//! reports, or baseline comparisons.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Runs a single benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            self.default_sample_size,
            self.default_measurement_time,
            f,
        );
        self
    }

    /// Opens a named group of benchmarks with shared settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
        }
    }
}

/// A group of related benchmarks sharing sample-size and time settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs a benchmark parametrized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parametrized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Hands the measured routine to the harness.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running it enough iterations to fill the sample budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup & calibration: one iteration tells us how many fit per sample.
    let mut warm = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut warm);
    let once = warm
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    let per_sample = measurement_time.as_secs_f64() / sample_size as f64;
    let iters = (per_sample / once.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut bench = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut bench);
    }
    let mut per_iter: Vec<f64> = bench
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter.first().copied().unwrap_or(median);
    let hi = per_iter.last().copied().unwrap_or(median);
    println!("bench: {id:<48} {median:>14.1} ns/iter  (min {lo:.1}, max {hi:.1}, {iters} it/sample, {sample_size} samples)");
}

/// Declares a group of benchmark functions runnable as one unit.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}
