//! Quickstart: build a linear-size skeleton of a random network, verify it,
//! and inspect its cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::graph::generators;

fn main() {
    // A connected random network: 5 000 routers, average degree 16.
    let g = generators::connected_gnm(5_000, 40_000, 7);
    println!(
        "network: {} nodes, {} links",
        g.node_count(),
        g.edge_count()
    );

    // Build the paper's linear-size skeleton, distributedly: every node is
    // a processor exchanging O(log^eps n)-word messages.
    let params = SkeletonParams::new(4.0, 0.5).expect("valid parameters");
    let spanner = skeleton::distributed::build_distributed(&g, &params, 42).expect("protocol run");

    assert!(
        spanner.is_spanning(&g),
        "a skeleton must preserve connectivity"
    );
    let metrics = spanner.metrics.expect("distributed construction");
    println!(
        "skeleton: {} edges ({:.2} per node) built in {} rounds, max message {} words",
        spanner.len(),
        spanner.edges_per_node(&g),
        metrics.rounds,
        metrics.max_message_words
    );

    // How much do distances suffer? Sample 2 000 pairs.
    let report = spanner.stretch_sampled(&g, 2_000, 1);
    println!("distortion: {report}");
    let certified = params.schedule(g.node_count()).distortion_bound;
    println!("certified worst-case stretch (Theorem 2 schedule): {certified}");
    assert!(report.max_multiplicative <= certified as f64);
    println!(
        "=> kept {:.1}% of edges, stretched sampled pairs by at most {:.1}x",
        100.0 * spanner.len() as f64 / g.edge_count() as f64,
        report.max_multiplicative
    );
}
