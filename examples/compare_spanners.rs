//! Side-by-side comparison of every spanner algorithm in the workspace on
//! one input — a compact version of the Fig. 1 experiment for interactive
//! exploration. Pass a node count to change the scale:
//!
//! ```text
//! cargo run --release --example compare_spanners -- 5000
//! ```

use ultrasparse_spanners::baselines::{additive2, baswana_sen, bfs_skeleton, greedy};
use ultrasparse_spanners::core::fibonacci::{self, FibonacciParams};
use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::core::Spanner;
use ultrasparse_spanners::graph::generators;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_000);
    let g = generators::connected_gnm(n, 10 * n, 1);
    println!(
        "input: connected G(n, m) with n = {n}, m = {}\n",
        g.edge_count()
    );
    println!(
        "{:<28} {:>8} {:>8} {:>12} {:>12}",
        "algorithm", "|S|", "|S|/n", "max stretch", "mean stretch"
    );

    let show = |name: &str, s: &Spanner| {
        assert!(s.is_spanning(&g), "{name} must span");
        let r = s.stretch_sampled(&g, 1_500, 9);
        println!(
            "{:<28} {:>8} {:>8.2} {:>12.2} {:>12.2}",
            name,
            s.len(),
            s.edges_per_node(&g),
            r.max_multiplicative,
            r.mean_multiplicative
        );
    };

    show("BFS forest", &bfs_skeleton::build(&g));
    for k in [2u32, 3] {
        let p = baswana_sen::BaswanaSenParams::new(k).unwrap();
        show(
            &format!("Baswana-Sen k={k}"),
            &baswana_sen::build_sequential(&g, &p, 5),
        );
    }
    if n <= 4_000 {
        show("greedy k=log n", &greedy::linear_size_skeleton(&g));
    }
    show("additive-2 (ACIM)", &additive2::build(&g, 5));
    let sk = SkeletonParams::default();
    show(
        "skeleton (this paper)",
        &skeleton::build_sequential(&g, &sk, 5),
    );
    let fp = FibonacciParams::new(n, 2, 0.5, 0).unwrap();
    show(
        "Fibonacci o=2 (this paper)",
        &fibonacci::build_sequential(&g, &fp, 5),
    );
}
