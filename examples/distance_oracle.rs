//! Distance-oracle scenario — the application the paper's conclusion
//! highlights: answer approximate distance queries from a compact
//! structure instead of running BFS per query.
//!
//! ```text
//! cargo run --release --example distance_oracle
//! ```

use ultrasparse_spanners::graph::distance::Apsp;
use ultrasparse_spanners::graph::{generators, NodeId};
use ultrasparse_spanners::oracle::DistanceOracle;

fn main() {
    let g = generators::connected_gnm(2_000, 30_000, 3);
    println!(
        "graph: {} nodes, {} edges ({} bytes as an exact distance matrix)",
        g.node_count(),
        g.edge_count(),
        4 * g.node_count() * g.node_count()
    );

    for k in [2u32, 3] {
        let oracle = DistanceOracle::build(&g, k, 9);
        println!(
            "\nThorup-Zwick oracle, k = {k}: stretch {}, {} bunch entries ({:.2} per node)",
            oracle.stretch(),
            oracle.size(),
            oracle.size() as f64 / g.node_count() as f64
        );

        // Evaluate query quality on exact distances.
        let apsp = Apsp::new(&g);
        let (mut worst, mut sum, mut count) = (1.0f64, 0.0f64, 0u32);
        for a in (0..g.node_count() as u32).step_by(37) {
            for b in (1..g.node_count() as u32).step_by(53) {
                if a == b {
                    continue;
                }
                let exact = apsp.dist(NodeId(a), NodeId(b)) as f64;
                let est = oracle.query(NodeId(a), NodeId(b)) as f64;
                let stretch = est / exact;
                worst = worst.max(stretch);
                sum += stretch;
                count += 1;
            }
        }
        println!(
            "queries: {count}, worst stretch {:.2} (guarantee {}), mean stretch {:.2}",
            worst,
            oracle.stretch(),
            sum / count as f64
        );
        assert!(worst <= oracle.stretch() as f64 + 1e-9);

        // The oracle's shortest-path trees double as a (2k-1)-spanner.
        let spanner = oracle.to_spanner();
        assert!(spanner.is_spanning(&g));
        println!(
            "induced (2k-1)-spanner: {} edges ({:.1}% of the graph)",
            spanner.len(),
            100.0 * spanner.len() as f64 / g.edge_count() as f64
        );
    }
}
