//! Synchronizer scenario (the introduction's motivating application).
//!
//! A classic use of a sparse skeleton: synchronization traffic should not
//! traverse every link. This example runs a network-wide broadcast on the
//! **event-driven asynchronous executor** — links deliver with random
//! per-hop latency — and compares recovering round semantics with (a) the
//! α-synchronizer over the raw network and (b) the skeleton synchronizer
//! over a built spanner (Bitton et al., arXiv:1909.08369). Same rounds,
//! same protocol traffic, far fewer synchronizer messages — and the
//! simulated clock is asserted against each synchronizer's analytic round
//! bound.
//!
//! ```text
//! cargo run --release --example synchronizer
//! ```

use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::graph::{generators, Graph, NodeId};
use ultrasparse_spanners::netsim::patterns::FloodProtocol;
use ultrasparse_spanners::netsim::{
    AsyncNetwork, FaultPlan, MessageBudget, RunMetrics, Synchronizer,
};

/// BFS depth of the subgraph `edges` from node 0 (the synchronizer tree's
/// root), for the skeleton synchronizer's latency bound.
fn bfs_depth(n: usize, edges: &[(NodeId, NodeId)]) -> u64 {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a.index()].push(b);
        adj[b.index()].push(a);
    }
    let mut dist = vec![u64::MAX; n];
    dist[0] = 0;
    let mut queue = std::collections::VecDeque::from([NodeId(0)]);
    let mut depth = 0;
    while let Some(v) = queue.pop_front() {
        depth = depth.max(dist[v.index()]);
        for &w in &adj[v.index()] {
            if dist[w.index()] == u64::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    depth
}

fn broadcast(g: &Graph, delays: &FaultPlan, synchronizer: Synchronizer) -> RunMetrics {
    let radius = g.node_count() as u32;
    let mut net = AsyncNetwork::new(g, MessageBudget::CONGEST, 1)
        .with_delays(delays.clone())
        .with_synchronizer(synchronizer);
    let states = net
        .run(
            |v, _| FloodProtocol::new(v == NodeId(0), radius),
            4 * radius,
        )
        .expect("flood");
    assert!(states.iter().all(FloodProtocol::reached));
    net.metrics()
}

fn main() {
    // A datacenter-ish interconnect: dense clusters, sparse uplinks.
    let g = generators::caveman(60, 25, 120, 3);
    println!(
        "interconnect: {} nodes, {} links",
        g.node_count(),
        g.edge_count()
    );

    // Build the skeleton.
    let params = SkeletonParams::new(4.0, 0.5).expect("valid");
    let skeleton = skeleton::build_sequential(&g, &params, 9);
    assert!(skeleton.is_spanning(&g));
    println!(
        "skeleton: {} links ({:.1}% of the network)",
        skeleton.len(),
        100.0 * skeleton.len() as f64 / g.edge_count() as f64
    );

    // Asynchronous links: 30% of hops take up to 3 extra ticks.
    let (delay_p, delay_max) = (0.3, 3u32);
    let delays = FaultPlan::new(7).with_delays(delay_p, delay_max);
    let l_max = 1 + delay_max as u64; // worst-case single-hop latency

    let alpha = broadcast(&g, &delays, Synchronizer::Alpha);
    let skel_edges: Vec<(NodeId, NodeId)> = skeleton.edges.iter().map(|e| g.endpoints(e)).collect();
    let skel = broadcast(&g, &delays, Synchronizer::Skeleton(skel_edges.clone()));

    println!(
        "\nbroadcast, α-synchronizer:        {} rounds, {} protocol + {} sync messages, \
         clock {}",
        alpha.rounds, alpha.messages, alpha.sync_messages, alpha.sim_time
    );
    println!(
        "broadcast, skeleton synchronizer: {} rounds, {} protocol + {} sync messages, \
         clock {}",
        skel.rounds, skel.messages, skel.sync_messages, skel.sim_time
    );
    println!(
        "=> {:.1}x fewer total messages for {:.2}x the simulated latency",
        (alpha.messages + alpha.sync_messages) as f64 / (skel.messages + skel.sync_messages) as f64,
        skel.sim_time as f64 / alpha.sim_time.max(1) as f64
    );

    // The free lunch, asserted: identical round complexity and protocol
    // traffic, strictly fewer messages over the skeleton.
    assert_eq!(alpha.protocol_only(), skel.protocol_only());
    assert!(skel.sync_messages < alpha.sync_messages);

    // And each run completes within its synchronizer's round bound. Per
    // recovered round the α-synchronizer costs at most deliver + ack +
    // SAFE = 3 hops; the skeleton variant costs deliver + ack plus a
    // convergecast up and a pulse down its BFS tree.
    let rounds = alpha.rounds as u64;
    let alpha_bound = 3 * l_max * (rounds + 1);
    assert!(
        alpha.sim_time <= alpha_bound,
        "alpha clock {} exceeds round bound {alpha_bound}",
        alpha.sim_time
    );
    let depth = bfs_depth(g.node_count(), &skel_edges);
    let skel_bound = l_max * (2 + 2 * depth) * (rounds + 1);
    assert!(
        skel.sim_time <= skel_bound,
        "skeleton clock {} exceeds round bound {skel_bound} (tree depth {depth})",
        skel.sim_time
    );
    println!(
        "round bounds hold: alpha {} <= {alpha_bound}, skeleton {} <= {skel_bound} \
         (tree depth {depth})",
        alpha.sim_time, skel.sim_time
    );
}
