//! Synchronizer scenario (the introduction's motivating application).
//!
//! A classic use of a sparse skeleton: broadcast/synchronization traffic
//! should not traverse every link. This example builds the paper's
//! skeleton on a dense cluster interconnect and compares the cost of a
//! network-wide broadcast over (a) the raw network and (b) the skeleton —
//! same reachability, far fewer messages, modest extra latency.
//!
//! ```text
//! cargo run --release --example synchronizer
//! ```

use ultrasparse_spanners::core::skeleton::{self, SkeletonParams};
use ultrasparse_spanners::graph::{generators, NodeId};
use ultrasparse_spanners::netsim::patterns::FloodProtocol;
use ultrasparse_spanners::netsim::{MessageBudget, Network};

fn main() {
    // A datacenter-ish interconnect: dense clusters, sparse uplinks.
    let g = generators::caveman(60, 25, 120, 3);
    println!(
        "interconnect: {} nodes, {} links",
        g.node_count(),
        g.edge_count()
    );

    // Build the skeleton.
    let params = SkeletonParams::new(4.0, 0.5).expect("valid");
    let skeleton = skeleton::build_sequential(&g, &params, 9);
    assert!(skeleton.is_spanning(&g));
    let sub = skeleton.edges.to_graph(&g);
    println!(
        "skeleton: {} links ({:.1}% of the network)",
        skeleton.len(),
        100.0 * skeleton.len() as f64 / g.edge_count() as f64
    );

    // Broadcast from node 0 over the raw network...
    let radius = g.node_count() as u32;
    let mut full_net = Network::new(&g, MessageBudget::CONGEST, 1);
    let full = full_net
        .run(
            |v, _| FloodProtocol::new(v == NodeId(0), radius),
            4 * radius,
        )
        .expect("flood");
    assert!(full.iter().all(FloodProtocol::reached));

    // ... and over the skeleton.
    let mut skel_net = Network::new(&sub, MessageBudget::CONGEST, 1);
    let skel = skel_net
        .run(
            |v, _| FloodProtocol::new(v == NodeId(0), radius),
            4 * radius,
        )
        .expect("flood");
    assert!(skel.iter().all(FloodProtocol::reached));

    let (fm, sm) = (full_net.metrics(), skel_net.metrics());
    println!(
        "broadcast over the raw network: {} messages, {} rounds",
        fm.messages, fm.rounds
    );
    println!(
        "broadcast over the skeleton:    {} messages, {} rounds",
        sm.messages, sm.rounds
    );
    println!(
        "=> {:.1}x fewer messages for {:.2}x the latency",
        fm.messages as f64 / sm.messages as f64,
        sm.rounds as f64 / fm.rounds as f64
    );
    assert!(sm.messages < fm.messages);
}
