//! Routing-overlay scenario: a Fibonacci spanner as the route substrate.
//!
//! Compact routing wants a sparse subgraph whose detours shrink as routes
//! get longer — exactly the Fibonacci staged-distortion profile: local
//! routes may take a small constant detour, long-haul routes are within
//! 1+ε of optimal. This example builds the overlay on a clustered
//! wide-area topology and prints the realized route stretch by distance.
//!
//! ```text
//! cargo run --release --example network_overlay
//! ```

use ultrasparse_spanners::core::fibonacci::{self, analysis, FibonacciParams};
use ultrasparse_spanners::graph::generators;

fn main() {
    // A wide-area topology: 150 dense metro clusters on a long backbone.
    let g = generators::caveman(150, 16, 80, 11);
    println!(
        "topology: {} nodes, {} links",
        g.node_count(),
        g.edge_count()
    );

    let params = FibonacciParams::new(g.node_count(), 2, 0.5, 0).expect("valid");
    let overlay = fibonacci::build_sequential(&g, &params, 23);
    assert!(overlay.is_spanning(&g));
    println!(
        "overlay: {} links ({:.1}% of the network), order {}, ell {}",
        overlay.len(),
        100.0 * overlay.len() as f64 / g.edge_count() as f64,
        params.order,
        params.ell
    );

    // Route-stretch profile: guaranteed vs realized, by route length.
    let profile = overlay.stretch_profile(&g, 20_000, 5);
    println!("\nroute length | routes | worst stretch | mean stretch | guarantee");
    for b in profile.iter().filter(|b| b.pairs >= 10) {
        if !(b.dist == 1 || b.dist % 8 == 0) {
            continue;
        }
        let guarantee = analysis::multiplicative_stretch(params.order, params.ell, b.dist as u64);
        assert!(b.max_stretch <= guarantee + 1e-9, "guarantee violated");
        println!(
            "{:>12} | {:>6} | {:>13.3} | {:>12.3} | {:>9.3}",
            b.dist,
            b.pairs,
            b.max_stretch,
            b.mean_stretch(),
            guarantee
        );
    }
    println!("\n=> long-haul routes approach optimal (stretch -> 1), short routes pay a bounded constant.");
}
